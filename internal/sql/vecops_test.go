package sql

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/sampler"
)

// vecSizesDB builds a table of exactly n rows (v = row index, tag = v mod 7)
// plus a small dimension table for joins.
func vecSizesDB(t *testing.T, n int) *core.DB {
	t.Helper()
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 99
	cfg.FixedSamples = 64
	db := core.NewDB(cfg)
	mustExec(t, db, "CREATE TABLE t (v, tag)")
	for lo := 0; lo < n; lo += 256 {
		hi := lo + 256
		if hi > n {
			hi = n
		}
		rows := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			rows = append(rows, fmt.Sprintf("(%d, %d)", i, i%7))
		}
		mustExec(t, db, "INSERT INTO t VALUES "+strings.Join(rows, ", "))
	}
	mustExec(t, db, "CREATE TABLE u (tag, lbl)")
	for i := 0; i < 7; i++ {
		mustExec(t, db, fmt.Sprintf("INSERT INTO u VALUES (%d, 'L%d')", i, i))
	}
	return db
}

// TestVecBatchBoundaries pushes tables of 0, 1, batch-1, batch and batch+1
// rows through every vectorized operator shape (scan, filter, project,
// hash-join build and probe sides, DISTINCT, ORDER BY, streaming LIMIT
// stopping mid-batch) and asserts byte-identical output against the
// row-at-a-time engine.
func TestVecBatchBoundaries(t *testing.T) {
	queries := []string{
		"SELECT v FROM t",                                             // bare scan
		"SELECT v FROM t WHERE v >= 0",                                // filter keeping every row
		"SELECT v FROM t WHERE tag = 3",                               // sparse filter (~1/7 survive)
		"SELECT v FROM t WHERE v < 0",                                 // filter dropping every row
		"SELECT v * 2 AS d FROM t WHERE tag = 1",                      // project above filter
		"SELECT DISTINCT tag FROM t",                                  // distinct
		"SELECT v FROM t ORDER BY v DESC LIMIT 5",                     // sort + limit
		"SELECT v FROM t LIMIT 1000",                                  // limit mid-batch
		"SELECT v FROM t LIMIT 1024",                                  // limit at the batch boundary
		"SELECT v FROM t LIMIT 2000",                                  // limit beyond one batch
		"SELECT t.v, u.lbl FROM t, u WHERE t.tag = u.tag LIMIT 10",    // join probe under limit pressure
		"SELECT u.lbl, t.v FROM u, t WHERE u.tag = t.tag LIMIT 10",    // big table on the build side
		"SELECT expected_count(*) AS n FROM t, u WHERE t.tag = u.tag", // full join drain + aggregate
	}
	for _, n := range []int{0, 1, vecBatchSize - 1, vecBatchSize, vecBatchSize + 1} {
		db := vecSizesDB(t, n)
		for _, q := range queries {
			ref, err := ExecContext(WithHints(context.Background(), Hints{NoVectorize: true}), db, q)
			if err != nil {
				t.Fatalf("n=%d %s (row): %v", n, q, err)
			}
			got, err := ExecContext(context.Background(), db, q)
			if err != nil {
				t.Fatalf("n=%d %s (vec): %v", n, q, err)
			}
			if got.String() != ref.String() {
				t.Fatalf("n=%d %s:\nvectorized:\n%s\nrow engine:\n%s", n, q, got, ref)
			}
		}
	}
}

// TestVecLimitStopsPulling asserts the need-driven chunk protocol: under
// LIMIT k the vectorized scan must report exactly k emitted rows (not a
// full batch), matching the row engine's per-row short circuit.
func TestVecLimitStopsPulling(t *testing.T) {
	db := vecSizesDB(t, vecBatchSize+1)
	node, err := Explain(db, "EXPLAIN ANALYZE SELECT v FROM t LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	scan := node
	for len(scan.Children) > 0 {
		scan = scan.Children[0]
	}
	if scan.Op != "Scan" || scan.Rows != 3 {
		t.Fatalf("scan under LIMIT 3 emitted rows=%d (op %s), want 3", scan.Rows, scan.Op)
	}
}

// TestVecCancellationBetweenBatches cancels the request context while a
// streaming cursor holds a partially consumed batch: the rows already
// produced keep flowing, and the cancellation surfaces at the next batch
// boundary instead of hanging or truncating silently.
func TestVecCancellationBetweenBatches(t *testing.T) {
	db := vecSizesDB(t, 3*vecBatchSize)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := QueryContext(ctx, db, "SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatalf("first row: %v", err)
	}
	cancel()
	rows := 1
	for {
		_, err := cur.Next()
		if err == nil {
			rows++
			if rows > 3*vecBatchSize {
				t.Fatal("cursor delivered more rows than the table holds after cancellation")
			}
			continue
		}
		if err == io.EOF || !errors.Is(err, context.Canceled) {
			t.Fatalf("cursor ended with %v, want context.Canceled", err)
		}
		break
	}
	if rows > vecBatchSize {
		t.Fatalf("cancellation crossed a batch boundary: %d rows delivered, want <= %d", rows, vecBatchSize)
	}
}
