package sql

import (
	"math"
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/sampler"
)

func testDB(t *testing.T) *core.DB {
	t.Helper()
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = 271828
	return core.NewDB(cfg)
}

func mustExec(t *testing.T, db *core.DB, q string) *ctable.Table {
	t.Helper()
	out, err := Exec(db, q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return out
}

func cell(t *testing.T, tb *ctable.Table, row, col int) float64 {
	t.Helper()
	f, ok := tb.Tuples[row].Values[col].AsFloat()
	if !ok {
		t.Fatalf("cell (%d, %d) not numeric: %s", row, col, tb.Tuples[row].Values[col])
	}
	return f
}

// --- Lexer ---

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 3.5e2 FROM t WHERE x <> 1 -- comment\n")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5e2", "FROM", "t", "WHERE", "x", "<>", "1"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("select 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := Lex("select @"); err == nil {
		t.Fatal("invalid character accepted")
	}
}

// --- Parser ---

func TestParseSelectShape(t *testing.T) {
	st, err := Parse(`SELECT o.price * 2 AS double_price, conf()
		FROM orders o, shipping s
		WHERE o.dest = s.dest AND s.days >= 7
		GROUP BY o.cust ORDER BY double_price DESC LIMIT 5;`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Targets) != 2 || len(sel.From) != 2 || len(sel.Where) != 2 {
		t.Fatalf("shape: %+v", sel)
	}
	if sel.From[1].Alias != "s" || sel.OrderBy == nil || !sel.Desc || sel.Limit != 5 {
		t.Fatalf("modifiers: %+v", sel)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"INSERT INTO t (1)",
		"CREATE TABLE t",
		"SELECT a FROM t WHERE a LIKE b",
		"SELECT a FROM t extra garbage (",
		"FROBNICATE",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("parsed invalid query %q", q)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	st, err := Parse("SELECT 1 + 2 * 3 FROM t")
	if err != nil {
		t.Fatal(err)
	}
	e := st.(*SelectStmt).Targets[0].Expr.(BinExpr)
	if e.Op != '+' {
		t.Fatalf("top op %c", e.Op)
	}
	if inner, ok := e.Right.(BinExpr); !ok || inner.Op != '*' {
		t.Fatal("multiplication did not bind tighter")
	}
}

// --- Execution ---

func TestCreateInsertSelect(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE items (name, qty)")
	mustExec(t, db, "INSERT INTO items VALUES ('apple', 3), ('pear', 5)")
	out := mustExec(t, db, "SELECT name, qty FROM items WHERE qty > 3")
	if out.Len() != 1 || out.Tuples[0].Values[0].S != "pear" {
		t.Fatalf("result: %s", out)
	}
}

func TestInsertArityError(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a, b)")
	if _, err := Exec(db, "INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestDropTable(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE temp (x)")
	mustExec(t, db, "DROP TABLE temp")
	if _, err := Exec(db, "SELECT x FROM temp"); err == nil {
		t.Fatal("dropped table still queryable")
	}
}

func TestCreateVariableAndConf(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (CREATE_VARIABLE('Uniform', 0, 1))")
	out := mustExec(t, db, "SELECT conf() FROM m WHERE v < 0.25")
	if out.Len() != 1 {
		t.Fatalf("rows %d", out.Len())
	}
	if got := cell(t, out, 0, 0); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("conf %v, want 0.25", got)
	}
	if !out.Tuples[0].Cond.IsTrue() {
		t.Fatal("conf() should strip conditions")
	}
}

func TestExpectationFunction(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (CREATE_VARIABLE('Normal', 10, 2))")
	out := mustExec(t, db, "SELECT expectation(v) AS ev FROM m")
	if got := cell(t, out, 0, 0); math.Abs(got-10) > 1e-9 {
		t.Fatalf("expectation %v", got)
	}
	if out.Schema[0].Name != "ev" {
		t.Fatalf("alias lost: %v", out.Schema.Names())
	}
}

func TestExpectedSumAggregate(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE sales (region, amount)")
	mustExec(t, db, "INSERT INTO sales VALUES ('east', CREATE_VARIABLE('Normal', 100, 5))")
	mustExec(t, db, "INSERT INTO sales VALUES ('east', 50), ('west', CREATE_VARIABLE('Normal', 200, 5))")
	out := mustExec(t, db, "SELECT region, expected_sum(amount) AS total FROM sales GROUP BY region ORDER BY region")
	if out.Len() != 2 {
		t.Fatalf("groups %d", out.Len())
	}
	if out.Tuples[0].Values[0].S != "east" || math.Abs(cell(t, out, 0, 1)-150) > 1e-6 {
		t.Fatalf("east row: %s", out)
	}
	if math.Abs(cell(t, out, 1, 1)-200) > 1e-6 {
		t.Fatalf("west row: %s", out)
	}
}

func TestSymbolicWhereBecomesCondition(t *testing.T) {
	// The CTYPE rewrite: a probabilistic WHERE clause moves into the
	// row condition rather than filtering.
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (CREATE_VARIABLE('Normal', 0, 1))")
	out := mustExec(t, db, "SELECT v FROM m WHERE v > 1")
	if out.Len() != 1 {
		t.Fatalf("symbolic row filtered out")
	}
	if out.Tuples[0].Cond.IsTrue() {
		t.Fatal("condition not attached")
	}
}

func TestJoinQueryEndToEnd(t *testing.T) {
	// The running example in SQL.
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE orders (cust, shipto, price)")
	mustExec(t, db, "CREATE TABLE shipping (dest, duration)")
	mustExec(t, db, "INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))")
	mustExec(t, db, "INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))")
	mustExec(t, db, "INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))")
	mustExec(t, db, "INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))")

	out := mustExec(t, db, `
		SELECT expected_sum(o.price) AS loss
		FROM orders o, shipping s
		WHERE o.shipto = s.dest AND o.cust = 'Joe' AND s.duration >= 7`)
	if out.Len() != 1 {
		t.Fatalf("rows %d", out.Len())
	}
	// E[price] * P[duration >= 7] = 100 * (1 - Phi(1)) ~ 15.87.
	want := 100 * (1 - 0.5*math.Erfc(-1/math.Sqrt2))
	if got := cell(t, out, 0, 0); math.Abs(got-want) > want*0.1 {
		t.Fatalf("loss %v, want ~%v", got, want)
	}
}

func TestArithmeticTargets(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a, b)")
	mustExec(t, db, "INSERT INTO t VALUES (10, 4)")
	out := mustExec(t, db, "SELECT a * b + 2 AS v, a - b, a / b, -a FROM t")
	wants := []float64{42, 6, 2.5, -10}
	for i, w := range wants {
		if got := cell(t, out, 0, i); got != w {
			t.Fatalf("col %d = %v, want %v", i, got, w)
		}
	}
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a, b)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 2)")
	out := mustExec(t, db, "SELECT * FROM t")
	if len(out.Schema) != 2 || out.Len() != 1 {
		t.Fatalf("star: %s", out)
	}
}

func TestDistinctQuery(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (1), (1), (2)")
	out := mustExec(t, db, "SELECT DISTINCT a FROM t")
	if out.Len() != 2 {
		t.Fatalf("distinct rows %d", out.Len())
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a)")
	mustExec(t, db, "INSERT INTO t VALUES (3), (1), (2)")
	out := mustExec(t, db, "SELECT a FROM t ORDER BY a DESC LIMIT 2")
	if out.Len() != 2 || cell(t, out, 0, 0) != 3 || cell(t, out, 1, 0) != 2 {
		t.Fatalf("order/limit: %s", out)
	}
}

func TestExpectedCountAndAvg(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (10), (20)")
	out := mustExec(t, db, "SELECT expected_count(*) AS c, expected_avg(v) AS a FROM t")
	if cell(t, out, 0, 0) != 2 || cell(t, out, 0, 1) != 15 {
		t.Fatalf("count/avg: %s", out)
	}
}

func TestExpectedMaxAggregate(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (5), (9), (2)")
	out := mustExec(t, db, "SELECT expected_max(v) AS m FROM t")
	if cell(t, out, 0, 0) != 9 {
		t.Fatalf("max: %s", out)
	}
}

func TestAggregateErrors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (a, v)")
	mustExec(t, db, "INSERT INTO t VALUES ('x', 1)")
	bad := []string{
		"SELECT a, expected_sum(v) FROM t",   // a not grouped
		"SELECT *, expected_sum(v) FROM t",   // star with aggregate
		"SELECT expected_sum(v, v) FROM t",   // arity
		"SELECT expected_sum_hist(v) FROM t", // API-only
		"SELECT b FROM t",                    // unknown column
		"SELECT expected_sum(nope) FROM t",   // unknown agg arg
		"SELECT a FROM t ORDER BY nope",      // unknown order col
		"SELECT v FROM missing",              // unknown table
	}
	for _, q := range bad {
		if _, err := Exec(db, q); err == nil {
			t.Fatalf("accepted %q", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE a (x)")
	mustExec(t, db, "CREATE TABLE b (x)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (2)")
	if _, err := Exec(db, "SELECT x FROM a, b"); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	out := mustExec(t, db, "SELECT a.x, b.x FROM a, b")
	if cell(t, out, 0, 0) != 1 || cell(t, out, 0, 1) != 2 {
		t.Fatalf("qualified refs: %s", out)
	}
}

func TestGroupConfAggregate(t *testing.T) {
	// aconf over a group: P[at least one row present].
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (g, v)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', CREATE_VARIABLE('Uniform', 0, 1))")
	out := mustExec(t, db, "SELECT g, conf() AS p FROM t WHERE v < 0.5 GROUP BY g")
	if math.Abs(cell(t, out, 0, 1)-0.5) > 1e-9 {
		t.Fatalf("group conf %v", cell(t, out, 0, 1))
	}
}
