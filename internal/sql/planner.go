package sql

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pip/internal/ctable"
)

// Hints disable individual planner rewrite rules for one request; attach
// them to a context with WithHints. They exist for plan-equivalence testing
// and benchmarking (e.g. forcing the nested-loop join path) — production
// queries should run with the zero value.
type Hints struct {
	// NoFold disables plan-time constant folding of WHERE conjuncts.
	NoFold bool
	// NoPushdown disables pushing single-table predicates below joins.
	NoPushdown bool
	// NoHashJoin disables equi-join key extraction; every join runs as a
	// filtered nested-loop cross product.
	NoHashJoin bool
	// NoPrune disables projection pruning at scans.
	NoPrune bool
	// NoVectorize lowers the plan onto the row-at-a-time operators instead
	// of the columnar batch engine (vecops.go). Both engines are
	// bit-identical; the switch exists for the differential harness and
	// A/B benchmarks. SQL surface: SET vectorize = on|off.
	NoVectorize bool
}

type hintsCtxKey struct{}

// WithHints returns a context carrying planner hints for statements
// executed under it.
func WithHints(ctx context.Context, h Hints) context.Context {
	return context.WithValue(ctx, hintsCtxKey{}, h)
}

// HintsFrom extracts planner hints from ctx (zero value when absent).
func HintsFrom(ctx context.Context) Hints {
	if ctx == nil {
		return Hints{}
	}
	h, _ := ctx.Value(hintsCtxKey{}).(Hints)
	return h
}

// conjunct is one compiled WHERE comparison plus the metadata the rewrite
// rules annotate onto it.
type conjunct struct {
	cmp      ctable.Compare
	display  string
	cols     []int // referenced global columns, sorted
	mappable bool  // true when the scalars are Col/Lit/Arith only
	foldTrue bool  // proven always-true at plan time; dropped from the filter
	joinLvl  int   // join level using it as a hash key (-1 none)
	keyLeft  int   // global column of the left-side key
	keyRight int   // global column of the right-side key (in table joinLvl+1)
}

// planSelect compiles a SELECT into a physical plan: bind against the
// catalog, build the logical IR, apply the rewrite rules, lower to
// operators. timed enables per-operator wall-time tracking (EXPLAIN
// ANALYZE).
func planSelect(env execEnv, st *SelectStmt, timed bool) (*physPlan, error) {
	endPlan := env.qs.StartPhase("plan")
	root, name, err := buildLogical(env, st)
	if err != nil {
		endPlan()
		return nil, err
	}
	var op operator
	if env.db.Config().DisableVectorize || env.hints.NoVectorize {
		op, err = lowerNode(env, root, timed)
	} else {
		op, err = lowerVecNode(env, root, timed, false)
	}
	endPlan()
	if err != nil {
		return nil, err
	}
	// Register the trace as the engine's last query here — only planned
	// statements (SELECT, EXPLAIN) become "the last query"; SHOW STATS and
	// DML never displace the snapshot they would be reporting on.
	env.db.ObserveQuery(env.qs)
	return &physPlan{root: op, name: name, qs: env.qs}, nil
}

// buildLogical binds a SELECT against the catalog and assembles the
// rewritten logical plan. The returned name is the result table's name
// (join of the FROM table names; "result" for aggregate queries).
func buildLogical(env execEnv, st *SelectStmt) (lnode, string, error) {
	if len(st.From) == 0 {
		return nil, "", fmt.Errorf("sql: SELECT requires FROM")
	}
	h := env.hints
	nt := len(st.From)

	// Bind FROM: snapshot each table (the cursor's view is fixed at plan
	// time) and lay the tables out in one flattened column space.
	scans := make([]*lScan, nt)
	schemas := make([]ctable.Schema, nt)
	offs := make([]int, nt)
	nameParts := make([]string, nt)
	width := 0
	for i, ref := range st.From {
		tb, err := env.db.Table(ref.Name)
		if err != nil {
			return nil, "", err
		}
		// Snapshot under the catalog lock: a concurrent session's INSERT
		// must not race this scan (it sees a consistent row prefix).
		scans[i] = &lScan{table: tb.Name, alias: ref.Alias, tuples: env.db.Snapshot(tb), schema: tb.Schema}
		schemas[i] = tb.Schema
		offs[i] = width
		width += len(tb.Schema)
		nameParts[i] = tb.Name
	}
	resolver := newResolver(st.From, schemas)

	// Qualified display names per global column (for plan rendering) and
	// the raw joined names (for SELECT * expansion).
	dispNames := make([]string, 0, width)
	joinedNames := make([]string, 0, width)
	for i, ref := range st.From {
		q := ref.Alias
		if q == "" {
			q = ref.Name
		}
		for _, c := range schemas[i] {
			if nt > 1 {
				dispNames = append(dispNames, q+"."+c.Name)
			} else {
				dispNames = append(dispNames, c.Name)
			}
			joinedNames = append(joinedNames, c.Name)
		}
	}

	// Bind WHERE conjuncts.
	conjs := make([]*conjunct, 0, len(st.Where))
	for _, cmp := range st.Where {
		op, err := cmpOpFromString(cmp.Op)
		if err != nil {
			return nil, "", err
		}
		l, err := compileScalar(cmp.Left, resolver, env)
		if err != nil {
			return nil, "", err
		}
		rr, err := compileScalar(cmp.Right, resolver, env)
		if err != nil {
			return nil, "", err
		}
		c := &conjunct{cmp: ctable.Compare{Op: op, Left: l, Right: rr}, joinLvl: -1}
		cols := map[int]bool{}
		c.mappable = scalarCols(l, cols) && scalarCols(rr, cols)
		c.cols = sortedCols(cols)
		c.display = compareDisplay(c.cmp, dispNames)
		conjs = append(conjs, c)
	}

	// Bind the projection or aggregation spec against the full column
	// space, and the group keys.
	hasAgg := selectHasAggregates(st)
	var proj *lProject
	var agg *lAggregate
	var outNames []string
	var err error
	if hasAgg {
		agg, err = bindAggregate(st, resolver, env)
		if err != nil {
			return nil, "", err
		}
		outNames = agg.outNames
	} else {
		proj, err = bindProject(st, resolver, env, joinedNames)
		if err != nil {
			return nil, "", err
		}
		outNames = proj.names
	}

	// ORDER BY resolves against the result schema, exactly as the sort
	// itself will run above the projection.
	sortIdx := -1
	if st.OrderBy != nil {
		for i, n := range outNames {
			if strings.EqualFold(n, st.OrderBy.Column) {
				sortIdx = i
				break
			}
		}
		if sortIdx < 0 {
			return nil, "", fmt.Errorf("%w %s in ORDER BY (not in result)", ErrUnknownColumn, *st.OrderBy)
		}
	}

	// Rewrite rules (rewrite.go).
	endRewrite := env.qs.StartPhase("rewrite")
	constFalse, foldReason := rewriteFold(conjs, h)
	globalMap := identityMap(width)
	newOffs := offs
	if !constFalse {
		rewritePushdown(conjs, scans, offs, nt, h)
		rewriteHashKeys(conjs, offs, h)
		globalMap, newOffs = rewritePrune(conjs, scans, offs, proj, agg, h)
	}
	endRewrite()

	// Assemble: scans -> left-deep joins -> filter -> project/aggregate ->
	// distinct -> sort -> limit.
	var input lnode
	if constFalse {
		input = &lEmpty{reason: foldReason}
	} else {
		input = lnode(scans[0])
		for k := 1; k < nt; k++ {
			j := &lJoin{left: input, right: scans[k]}
			for _, c := range conjs {
				if c.joinLvl == k-1 {
					j.hash = true
					j.leftKeys = append(j.leftKeys, globalMap[c.keyLeft])
					j.rightKeys = append(j.rightKeys, globalMap[c.keyRight]-newOffs[k])
					j.display = append(j.display, c.display)
				}
			}
			input = j
		}
		var preds []lpred
		for _, c := range conjs {
			if !c.foldTrue {
				preds = append(preds, lpred{cmp: c.cmp, display: c.display})
			}
		}
		if len(preds) > 0 {
			input = &lFilter{input: input, preds: preds}
		}
	}
	name := strings.Join(nameParts, "_x_")
	if hasAgg {
		agg.input = input
		input = agg
		name = "result"
	} else {
		proj.input = input
		input = proj
	}
	if st.Distinct {
		input = &lDistinct{input: input}
	}
	if sortIdx >= 0 {
		input = &lSort{input: input, col: sortIdx, name: st.OrderBy.Column, desc: st.Desc}
	}
	if st.Limit > 0 {
		input = &lLimit{input: input, n: st.Limit}
	}
	return input, name, nil
}

// bindProject compiles the target list of an aggregate-free SELECT,
// including the per-row functions conf(), expectation() and
// variance()/stddev().
func bindProject(st *SelectStmt, r *resolver, env execEnv, joinedNames []string) (*lProject, error) {
	p := &lProject{}
	for _, tgt := range st.Targets {
		if tgt.Star {
			for i, n := range joinedNames {
				p.names = append(p.names, n)
				p.targets = append(p.targets, ctable.Col(i))
			}
			continue
		}
		name := tgt.Alias
		if fc, ok := tgt.Expr.(FuncCall); ok {
			switch strings.ToLower(fc.Name) {
			case "conf":
				if name == "" {
					name = "conf"
				}
				p.confCols = append(p.confCols, len(p.targets))
				p.names = append(p.names, name)
				p.targets = append(p.targets, ctable.LitFloat(0)) // placeholder
				continue
			case "expectation":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: expectation() takes one argument")
				}
				sc, err := compileScalar(fc.Args[0], r, env)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = "expectation"
				}
				p.expCols = append(p.expCols, len(p.targets))
				p.names = append(p.names, name)
				p.targets = append(p.targets, sc)
				continue
			case "variance", "stddev":
				if len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: %s() takes one argument", strings.ToLower(fc.Name))
				}
				sc, err := compileScalar(fc.Args[0], r, env)
				if err != nil {
					return nil, err
				}
				if name == "" {
					name = strings.ToLower(fc.Name)
				}
				p.varCols = append(p.varCols, varCol{pos: len(p.targets), kind: strings.ToLower(fc.Name)})
				p.names = append(p.names, name)
				p.targets = append(p.targets, sc)
				continue
			}
		}
		sc, err := compileScalar(tgt.Expr, r, env)
		if err != nil {
			return nil, err
		}
		if name == "" {
			name = defaultName(tgt.Expr)
		}
		p.names = append(p.names, name)
		p.targets = append(p.targets, sc)
	}
	return p, nil
}

// bindAggregate compiles the target list of an aggregate SELECT into the
// staged layout [group keys..., agg args...] plus per-output routing.
func bindAggregate(st *SelectStmt, r *resolver, env execEnv) (*lAggregate, error) {
	a := &lAggregate{}

	// Group keys stage first, in GROUP BY order.
	keyG := make([]int, 0, len(st.GroupBy))
	for _, g := range st.GroupBy {
		idx, err := r.resolve(g)
		if err != nil {
			return nil, err
		}
		keyG = append(keyG, idx)
		a.staged = append(a.staged, ctable.Col(idx))
		a.stagedNames = append(a.stagedNames, g.Column)
	}
	a.nKeys = len(keyG)

	for _, tgt := range st.Targets {
		if tgt.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregates")
		}
		if fc, ok := tgt.Expr.(FuncCall); ok && (fc.IsAggregate() || fc.IsConf()) {
			kind := strings.ToLower(fc.Name)
			name := tgt.Alias
			if name == "" {
				name = kind
			}
			at := aggTarget{kind: kind, argCol: -1, outName: name}
			switch kind {
			case "expected_count", "conf", "aconf":
				// no argument column needed
			case "expected_sum_hist", "expected_max_hist":
				return nil, fmt.Errorf("sql: %s is available through the Go API (core.DB.Histogram), not SQL", kind)
			default:
				if fc.Star || len(fc.Args) != 1 {
					return nil, fmt.Errorf("sql: %s takes exactly one argument", kind)
				}
				sc, err := compileScalar(fc.Args[0], r, env)
				if err != nil {
					return nil, err
				}
				at.argCol = len(a.staged)
				a.staged = append(a.staged, sc)
				a.stagedNames = append(a.stagedNames, fmt.Sprintf("_agg%d", len(a.aggs)))
			}
			a.outCols = append(a.outCols, aggOutCol{aggIdx: len(a.aggs), name: name})
			a.outNames = append(a.outNames, name)
			a.aggs = append(a.aggs, at)
			continue
		}
		// Non-aggregate target must be a group key column.
		ref, ok := tgt.Expr.(ColRef)
		if !ok {
			return nil, fmt.Errorf("sql: non-aggregate target %v must be a GROUP BY column", tgt.Expr)
		}
		idx, err := r.resolve(ref)
		if err != nil {
			return nil, err
		}
		ki := -1
		for i, k := range keyG {
			if k == idx {
				ki = i
			}
		}
		if ki < 0 {
			return nil, fmt.Errorf("sql: target %s is not in GROUP BY", ref)
		}
		name := tgt.Alias
		if name == "" {
			name = ref.Column
		}
		a.outCols = append(a.outCols, aggOutCol{isKey: true, keyIdx: ki, name: name})
		a.outNames = append(a.outNames, name)
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Scalar utilities shared by the rewrite rules

// scalarCols collects the global columns a compiled scalar references,
// reporting false for scalars the planner cannot analyze (ScalarFunc).
func scalarCols(s ctable.Scalar, out map[int]bool) bool {
	switch t := s.(type) {
	case ctable.Col:
		out[int(t)] = true
		return true
	case ctable.Lit:
		return true
	case ctable.Arith:
		return scalarCols(t.Left, out) && scalarCols(t.Right, out)
	default:
		return false
	}
}

// remapScalar rewrites column references through m (old index -> new index).
func remapScalar(s ctable.Scalar, m []int) ctable.Scalar {
	switch t := s.(type) {
	case ctable.Col:
		return ctable.Col(m[int(t)])
	case ctable.Arith:
		return ctable.Arith{Op: t.Op, Left: remapScalar(t.Left, m), Right: remapScalar(t.Right, m)}
	default:
		return s
	}
}

// remapCompare rewrites a comparison's column references through m.
func remapCompare(c ctable.Compare, m []int) ctable.Compare {
	return ctable.Compare{Op: c.Op, Left: remapScalar(c.Left, m), Right: remapScalar(c.Right, m)}
}

// scalarDisplay renders a compiled scalar with source-level column names.
func scalarDisplay(s ctable.Scalar, names []string) string {
	switch t := s.(type) {
	case ctable.Col:
		if int(t) >= 0 && int(t) < len(names) {
			return names[int(t)]
		}
		return t.String()
	case ctable.Lit:
		if t.V.Kind == ctable.KindString {
			return "'" + t.V.S + "'"
		}
		return t.V.String()
	case ctable.Arith:
		return "(" + scalarDisplay(t.Left, names) + " " + t.Op.String() + " " + scalarDisplay(t.Right, names) + ")"
	default:
		return s.String()
	}
}

// compareDisplay renders a compiled comparison with source-level names.
func compareDisplay(c ctable.Compare, names []string) string {
	return scalarDisplay(c.Left, names) + " " + c.Op.String() + " " + scalarDisplay(c.Right, names)
}

// sortedCols flattens a column set into a sorted slice.
func sortedCols(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// identityMap returns the identity column mapping of the given width.
func identityMap(width int) []int {
	m := make([]int, width)
	for i := range m {
		m[i] = i
	}
	return m
}
