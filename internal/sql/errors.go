package sql

import (
	"errors"
	"fmt"
	"strings"
)

// ErrParse is the sentinel wrapped by every lexical and syntactic error on
// the query path; match it with errors.Is. The concrete error is always a
// *ParseError carrying the source position — retrieve it with errors.As to
// render carets or IDE diagnostics.
var ErrParse = errors.New("sql: parse error")

// ErrUnknownColumn is the sentinel wrapped by column-resolution failures
// (a SELECT target, WHERE operand, GROUP BY or ORDER BY key naming no
// column of the FROM tables); match it with errors.Is.
var ErrUnknownColumn = errors.New("sql: unknown column")

// ErrBind is the sentinel wrapped by placeholder-binding failures: wrong
// argument arity, or executing a statement containing ? placeholders
// without binding arguments (use Prepare).
var ErrBind = errors.New("sql: bind error")

// ParseError is a lexical or syntactic error with its source position.
// It wraps ErrParse (errors.Is(err, ErrParse) holds).
type ParseError struct {
	// Src is the statement text being parsed.
	Src string
	// Offset is the byte offset of the offending token in Src.
	Offset int
	// Line and Col locate the offense, both 1-based; columns count runes.
	Line, Col int
	// Msg describes the failure ("expected FROM, got ...").
	Msg string
}

// Error renders the position and message.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

// Unwrap ties the error to the ErrParse sentinel.
func (e *ParseError) Unwrap() error { return ErrParse }

// SourceLine returns the line of Src the error points at (without its
// trailing newline), for caret rendering.
func (e *ParseError) SourceLine() string {
	lines := strings.Split(e.Src, "\n")
	if e.Line < 1 || e.Line > len(lines) {
		return ""
	}
	return lines[e.Line-1]
}

// newParseError builds a ParseError at a byte offset of src.
func newParseError(src string, offset int, msg string) *ParseError {
	line, col := LineCol(src, offset)
	return &ParseError{Src: src, Offset: offset, Line: line, Col: col, Msg: msg}
}

// LineCol converts a byte offset in src to 1-based line and column numbers
// (columns count runes, so carets align under multi-byte text).
func LineCol(src string, offset int) (line, col int) {
	if offset > len(src) {
		offset = len(src)
	}
	line, col = 1, 1
	for _, r := range src[:offset] {
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
