// SHOW STATS: the SQL surface of the engine's telemetry. The statement
// renders the engine-wide sampler counters and the most recent query's
// trace as a plain (scope, name, value) c-table, so the numbers reach every
// query surface — eager Exec, streaming Rows, the database/sql driver and
// the pip:// wire protocol — with an identical schema.

package sql

import (
	"sort"

	"pip/internal/ctable"
	"pip/internal/obs"
)

// execShow runs SHOW STATS. Engine-scope rows report the database-wide
// counter set (every session of the catalog rolls up into it); query-scope
// rows report the most recently planned statement's trace — sampler
// counters, phase durations (phase_<name>_seconds) and the length of its
// recorded epsilon-trajectory. Rows are emitted in sorted name order per
// scope, engine first, so the shape is stable across surfaces and runs.
func execShow(env execEnv) (*ctable.Table, error) {
	es := env.db.Stats()
	out := &ctable.Table{Name: "stats", Schema: ctable.Schema{
		{Name: "scope"}, {Name: "name"}, {Name: "value"},
	}}
	appendRows(out, "engine", samplerRows(es.Sampler.Snapshot(), map[string]float64{
		"queries_traced": float64(es.Queries()),
	}))
	if q := es.LastQuery(); q != nil {
		extra := map[string]float64{
			"trajectory_points": float64(len(q.Sampler.Trajectory())),
		}
		phases := phaseSeconds(q.Phases())
		names := make([]string, 0, len(phases))
		for name := range phases {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			extra["phase_"+name+"_seconds"] = phases[name]
		}
		appendRows(out, "query", samplerRows(q.Sampler.Snapshot(), extra))
	}
	// Subsystems outside the engine (e.g. replication) contribute their own
	// scopes; StatsScopes returns them sorted by scope name.
	for _, sc := range env.db.StatsScopes() {
		appendRows(out, sc.Scope, sc.Values)
	}
	return out, nil
}

// samplerRows flattens a sampler snapshot (plus any extra metrics) into a
// name -> value map.
func samplerRows(s obs.SamplerSnapshot, extra map[string]float64) map[string]float64 {
	rows := map[string]float64{
		"samples":              float64(s.Samples),
		"batches":              float64(s.Batches),
		"rounds":               float64(s.Rounds),
		"rejection_attempts":   float64(s.RejectionAttempts),
		"rejection_accepts":    float64(s.RejectionAccepts),
		"metropolis_proposals": float64(s.MetropolisProposals),
		"metropolis_accepts":   float64(s.MetropolisAccepts),
		"escalations":          float64(s.Escalations),
		"exact_cdf_hits":       float64(s.ExactCDFHits),
		"closed_form_hits":     float64(s.ClosedFormHits),
	}
	for k, v := range extra {
		rows[k] = v
	}
	return rows
}

// phaseSeconds aggregates recorded spans by phase name into seconds (a
// statement may record several spans of one phase, e.g. nested rewrites).
func phaseSeconds(phases []obs.PhaseSpan) map[string]float64 {
	out := map[string]float64{}
	for _, p := range phases {
		out[p.Name] += p.Duration.Seconds()
	}
	return out
}

// appendRows emits one scope's metrics in sorted name order.
func appendRows(out *ctable.Table, scope string, rows map[string]float64) {
	names := make([]string, 0, len(rows))
	for n := range rows {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Tuples = append(out.Tuples, ctable.NewTuple(
			ctable.String_(scope), ctable.String_(n), ctable.Float(rows[n])))
	}
}
