package sql

import (
	"math"
	"testing"
)

func TestPerRowVarianceAndStddev(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (CREATE_VARIABLE('Normal', 10, 3))")
	out := mustExec(t, db, "SELECT variance(v) AS vv, stddev(v) AS sv FROM m")
	vv := cell(t, out, 0, 0)
	sv := cell(t, out, 0, 1)
	if math.Abs(vv-9) > 1e-9 || math.Abs(sv-3) > 1e-9 {
		t.Fatalf("variance %v stddev %v (closed form expected)", vv, sv)
	}
}

func TestPerRowVarianceConditional(t *testing.T) {
	// Var[U | U > 0.5] = (0.5)^2 / 12 for U ~ Uniform(0,1).
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE m (v)")
	mustExec(t, db, "INSERT INTO m VALUES (CREATE_VARIABLE('Uniform', 0, 1))")
	out := mustExec(t, db, "SELECT variance(v) AS vv FROM m WHERE v > 0.5")
	want := 0.25 / 12
	if got := cell(t, out, 0, 0); math.Abs(got-want) > 0.25*want {
		t.Fatalf("conditional variance %v, want %v", got, want)
	}
}

func TestExpectedStddevAggregate(t *testing.T) {
	// Deterministic rows 10 and 20: per-world stddev is always 5.
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (10), (20)")
	out := mustExec(t, db, "SELECT expected_stddev(v) AS s, expected_variance(v) AS vr FROM t")
	if got := cell(t, out, 0, 0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("expected_stddev %v, want 5", got)
	}
	if got := cell(t, out, 0, 1); math.Abs(got-25) > 1e-9 {
		t.Fatalf("expected_variance %v, want 25", got)
	}
}

func TestExpectedStddevGrouped(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (g, v)")
	mustExec(t, db, "INSERT INTO t VALUES ('a', 0), ('a', 10), ('b', 7)")
	out := mustExec(t, db, "SELECT g, expected_stddev(v) AS s FROM t GROUP BY g ORDER BY g")
	if got := cell(t, out, 0, 1); math.Abs(got-5) > 1e-9 {
		t.Fatalf("group a stddev %v", got)
	}
	// Single-row group has zero spread.
	if got := cell(t, out, 1, 1); got != 0 {
		t.Fatalf("group b stddev %v", got)
	}
}

func TestVarianceArityErrors(t *testing.T) {
	db := testDB(t)
	mustExec(t, db, "CREATE TABLE t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	for _, q := range []string{
		"SELECT variance() FROM t",
		"SELECT stddev(v, v) FROM t",
		"SELECT expected_stddev(v, v) FROM t",
	} {
		if _, err := Exec(db, q); err == nil {
			t.Fatalf("accepted %q", q)
		}
	}
}
