// EXPLAIN [ANALYZE]: the public window onto the planner. The statement form
// returns the rendered operator tree as a one-column "QUERY PLAN" table (so
// it flows through every query surface — Rows, pipql, database/sql);
// ExplainContext returns the typed tree for programmatic consumers.

package sql

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pip/internal/core"
	"pip/internal/ctable"
)

// PlanNode is one operator of a compiled query plan, as returned by
// ExplainContext (and pip.DB.Explain). Rows and Elapsed are populated only
// when Analyzed is true (EXPLAIN ANALYZE): Rows counts the tuples the
// operator emitted and Elapsed is the cumulative wall time spent in the
// operator including its children.
type PlanNode struct {
	// Op names the operator ("Scan", "HashJoin", "Filter", ...).
	Op string
	// Detail carries operator-specific information ("orders as o", join
	// keys, predicate text).
	Detail string
	// Columns lists the operator's output column names.
	Columns []string
	// Analyzed reports whether Rows and Elapsed carry execution counters.
	Analyzed bool
	// Rows is the number of tuples the operator emitted (ANALYZE only).
	Rows int64
	// Elapsed is cumulative operator wall time, children included
	// (ANALYZE only).
	Elapsed time.Duration
	// OpBatches is the number of column batches the operator emitted
	// (ANALYZE only; zero on the row-at-a-time engine). Distinct from
	// Batches below, which counts sampler batches.
	OpBatches int64
	// Sampling reports that the operator carries its own sampler telemetry
	// scope (Project and Aggregate nodes); Samples, Batches and AcceptRate
	// are meaningful only when it is set.
	Sampling bool
	// Samples and Batches count the accepted samples and dispatched sample
	// batches the operator's sampler work consumed.
	Samples int64
	Batches int64
	// AcceptRate is the rejection sampler's acceptance fraction for this
	// operator, negative when no rejection attempts were made.
	AcceptRate float64
	// Children are the operator's inputs, left to right.
	Children []*PlanNode
}

// String renders the plan as an indented operator tree, one line per
// operator.
func (n *PlanNode) String() string {
	return strings.Join(n.Lines(), "\n")
}

// Lines renders the plan tree as indented lines (two spaces per depth).
func (n *PlanNode) Lines() []string {
	var out []string
	n.render(&out, 0)
	return out
}

func (n *PlanNode) render(out *[]string, depth int) {
	line := strings.Repeat("  ", depth) + n.Op
	if n.Detail != "" {
		line += " " + n.Detail
	}
	if n.Analyzed {
		line += fmt.Sprintf(" [rows=%d", n.Rows)
		if n.OpBatches > 0 {
			line += fmt.Sprintf(" batches=%d", n.OpBatches)
		}
		line += fmt.Sprintf(" time=%s", n.Elapsed.Round(time.Microsecond))
		if n.Sampling {
			line += fmt.Sprintf(" samples=%d batches=%d", n.Samples, n.Batches)
			if n.AcceptRate >= 0 {
				line += fmt.Sprintf(" accept=%.3f", n.AcceptRate)
			}
		}
		line += "]"
	}
	*out = append(*out, line)
	for _, c := range n.Children {
		c.render(out, depth+1)
	}
}

// toPlanNode converts a physical operator tree into the public typed tree.
func toPlanNode(op operator, analyzed bool) *PlanNode {
	b := op.base()
	n := &PlanNode{
		Op:       b.name,
		Detail:   b.detail,
		Columns:  append([]string(nil), b.cols...),
		Analyzed: analyzed,
	}
	if analyzed {
		n.Rows = b.stats.rows
		n.Elapsed = b.stats.elapsed
		n.OpBatches = b.stats.batches
		if b.samp != nil {
			snap := b.samp.Snapshot()
			n.Sampling = true
			n.Samples = snap.Samples
			n.Batches = snap.Batches
			if rate, ok := snap.AcceptRate(); ok {
				n.AcceptRate = rate
			} else {
				n.AcceptRate = -1
			}
		}
	}
	for _, k := range b.kids {
		n.Children = append(n.Children, toPlanNode(k, analyzed))
	}
	return n
}

// Explain plans (and under analyze also executes) one SELECT statement and
// returns the typed operator tree. See ExplainContext.
func Explain(db *core.DB, src string, args ...ctable.Value) (*PlanNode, error) {
	return ExplainContext(context.Background(), db, src, args...)
}

// ExplainContext plans one SELECT under a request context and returns the
// typed operator tree. src may be a bare SELECT (plan only), or an EXPLAIN
// / EXPLAIN ANALYZE statement — under ANALYZE the query executes (its rows
// are discarded) and every node carries emitted row counts and cumulative
// wall times. Placeholders bind from args exactly as in execution, so plans
// reflect the bound constants.
func ExplainContext(ctx context.Context, db *core.DB, src string, args ...ctable.Value) (*PlanNode, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	analyze := false
	var sel *SelectStmt
	switch s := st.(type) {
	case *ExplainStmt:
		analyze = s.Analyze
		sel = s.Query
	case *SelectStmt:
		sel = s
	default:
		return nil, fmt.Errorf("sql: EXPLAIN supports SELECT statements, got %T", st)
	}
	if n := NumParams(sel); n != len(args) {
		return nil, fmt.Errorf("%w: statement has %d placeholder(s), got %d argument(s)",
			ErrBind, n, len(args))
	}
	env := newExecEnv(ctx, db, args)
	env.qs.Query = src
	if err := env.ctxErr(); err != nil {
		return nil, err
	}
	plan, err := planSelect(env, sel, analyze)
	if err != nil {
		return nil, err
	}
	if analyze {
		if _, err := plan.drain(); err != nil {
			return nil, err
		}
	}
	return toPlanNode(plan.root, analyze), nil
}

// execExplain runs an EXPLAIN [ANALYZE] statement, rendering the plan tree
// into a one-column "QUERY PLAN" table.
func execExplain(env execEnv, st *ExplainStmt) (*ctable.Table, error) {
	plan, err := planSelect(env, st.Query, st.Analyze)
	if err != nil {
		return nil, err
	}
	var total time.Duration
	if st.Analyze {
		//pipvet:allow detsource ANALYZE wall-clock telemetry, never feeds sampled state
		start := time.Now()
		if _, err := plan.drain(); err != nil {
			return nil, err
		}
		//pipvet:allow detsource ANALYZE wall-clock telemetry, never feeds sampled state
		total = time.Since(start)
	}
	node := toPlanNode(plan.root, st.Analyze)
	out := &ctable.Table{Name: "explain", Schema: ctable.Schema{{Name: "QUERY PLAN"}}}
	for _, line := range node.Lines() {
		out.Tuples = append(out.Tuples, ctable.NewTuple(ctable.String_(line)))
	}
	if st.Analyze {
		out.Tuples = append(out.Tuples, ctable.NewTuple(ctable.String_(
			fmt.Sprintf("Execution time: %s", total.Round(time.Microsecond)))))
	}
	return out, nil
}
