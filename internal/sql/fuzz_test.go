package sql

import "testing"

// parseSeedCorpus is drawn from the statement forms documented in
// docs/SQL.md — every statement kind, the paper's running example, plus
// edge shapes (placeholders, aliases, nested expressions, unicode, and a
// few deliberately malformed strings).
var parseSeedCorpus = []string{
	"CREATE TABLE orders (cust, shipto, price)",
	"CREATE TABLE forecasts (city, rainfall float)",
	"DROP TABLE orders",
	"INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10)), ('Bob', 'LA', 80)",
	"INSERT INTO forecasts VALUES ('Ithaca', CREATE_VARIABLE('Normal', 12, 4))",
	"INSERT INTO t VALUES (?, ?, 1 + 2 * -3)",
	"SELECT o.cust, o.price * 1.08 AS gross FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7",
	"SELECT cust FROM orders WHERE price > ?",
	"SELECT cust, expectation(price) AS e, conf() AS p FROM orders",
	"SELECT shipto, expected_sum(price) AS revenue, aconf() AS p_any FROM orders",
	"SELECT DISTINCT cust FROM orders ORDER BY cust LIMIT 3",
	"EXPLAIN SELECT o.cust FROM orders o, shipping s WHERE o.shipto = s.dest",
	"EXPLAIN ANALYZE SELECT cust FROM orders WHERE price > 95 LIMIT 1",
	"SET max_samples = 4096",
	"SET seed = 31415",
	"SHOW STATS",
	"select 'unicode: héllo wörld — ☂'",
	"SELECT (((1)))",
	"INSERT INTO t VALUES",
	"SELEC typo",
	"",
	"SELECT * FROM",
	"'unterminated",
}

// FuzzParse throws arbitrary statement text at the SQL front end: lexing
// and parsing must classify every input as a statement or an error without
// panicking, and anything that parses must parse again when re-fed (the
// parser is deterministic and side-effect free).
func FuzzParse(f *testing.F) {
	for _, src := range parseSeedCorpus {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		if st == nil {
			t.Fatalf("nil statement without error for %q", src)
		}
		if n := NumParams(st); n < 0 {
			t.Fatalf("negative placeholder count %d for %q", n, src)
		}
		if _, err := Parse(src); err != nil {
			t.Fatalf("second parse of accepted input failed: %q: %v", src, err)
		}
	})
}
