package sql

import (
	"context"
	"fmt"
	"time"

	"pip/internal/core"
	"pip/internal/ctable"
)

// Prepared is a prepared statement: the statement is lexed and parsed once,
// the resulting AST (the planner's input) is cached, and each execution
// binds a fresh argument vector against the ? placeholders — the
// prepare-once / bind-many idiom of database drivers. A Prepared is
// immutable after Prepare and safe for concurrent execution.
type Prepared struct {
	src      string
	st       Stmt
	numInput int
	// parseTime is the lex+parse wall time, replayed into each execution's
	// trace as its "parse" phase (the statement parses once, so every
	// execution shares the cost it actually paid).
	parseTime time.Duration
}

// Prepare parses one statement for later execution. Syntax errors are
// *ParseError values wrapping ErrParse.
func Prepare(src string) (*Prepared, error) {
	//pipvet:allow detsource parse-time telemetry, never feeds sampled state
	start := time.Now()
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return &Prepared{src: src, st: st, numInput: NumParams(st), parseTime: time.Since(start)}, nil //pipvet:allow detsource parse-time telemetry, never feeds sampled state
}

// NumInput returns the number of ? placeholders the statement binds.
func (p *Prepared) NumInput() int { return p.numInput }

// Source returns the statement text the Prepared was built from.
func (p *Prepared) Source() string { return p.src }

// checkArity validates the bound argument count against the placeholder
// count, wrapping ErrBind on mismatch.
func (p *Prepared) checkArity(args []ctable.Value) error {
	if len(args) != p.numInput {
		return fmt.Errorf("%w: statement has %d placeholder(s), got %d argument(s)",
			ErrBind, p.numInput, len(args))
	}
	return nil
}

// Exec executes the statement with bound arguments, returning the
// materialized result table (nil for DDL/DML).
func (p *Prepared) Exec(db *core.DB, args ...ctable.Value) (*ctable.Table, error) {
	return p.ExecContext(context.Background(), db, args...)
}

// ExecContext is Exec under a request context: cancellation or deadline
// expiry aborts sampling promptly and returns ctx.Err(), never a partial
// result.
func (p *Prepared) ExecContext(ctx context.Context, db *core.DB, args ...ctable.Value) (*ctable.Table, error) {
	if err := p.checkArity(args); err != nil {
		return nil, err
	}
	return execStmtTraced(ctx, db, p.st, p.src, p.parseTime, args)
}

// Query executes the statement with bound arguments, returning a streaming
// cursor over the result rows.
func (p *Prepared) Query(db *core.DB, args ...ctable.Value) (Cursor, error) {
	return p.QueryContext(context.Background(), db, args...)
}

// QueryContext is Query under a request context. Every SELECT streams
// through the planned operator pipeline: rows are joined, filtered and
// projected on demand as the cursor advances, and blocking operators
// (aggregates, DISTINCT, ORDER BY) materialize their own input internally
// on the first Next call. Other statements execute eagerly and the cursor
// iterates the materialized result.
func (p *Prepared) QueryContext(ctx context.Context, db *core.DB, args ...ctable.Value) (Cursor, error) {
	if err := p.checkArity(args); err != nil {
		return nil, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if sel, ok := p.st.(*SelectStmt); ok {
		env := newExecEnv(ctx, db, args)
		env.qs.Query = p.src
		env.qs.AddPhase("parse", p.parseTime)
		plan, err := planSelect(env, sel, false)
		if err != nil {
			return nil, err
		}
		// The streaming path leaves plan.root untouched (EXPLAIN reads the
		// operator tree) and wraps it in a cursor that accumulates the
		// "execute" phase as the consumer drains it.
		return newSpanCursor(plan.root, env.qs), nil
	}
	tb, err := execStmtTraced(ctx, db, p.st, p.src, p.parseTime, args)
	if err != nil {
		return nil, err
	}
	return NewTableCursor(tb), nil
}
