package sql

import "strings"

// Stmt is a parsed SQL statement.
type Stmt interface{ stmt() }

// CreateTableStmt is CREATE TABLE name (col1, col2, ...).
type CreateTableStmt struct {
	Name    string
	Columns []string
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is INSERT INTO name VALUES (e1, ...), (e1, ...).
type InsertStmt struct {
	Table string
	Rows  [][]Node
}

func (*InsertStmt) stmt() {}

// SelectStmt is the query form:
//
//	SELECT targets FROM tables [WHERE conj] [GROUP BY cols] [ORDER BY col] [LIMIT n]
type SelectStmt struct {
	Targets  []Target
	From     []TableRef
	Where    []Comparison
	GroupBy  []ColRef
	OrderBy  *ColRef
	Desc     bool
	Limit    int // 0 = no limit
	Distinct bool
}

func (*SelectStmt) stmt() {}

// DropStmt is DROP TABLE name.
type DropStmt struct{ Name string }

func (*DropStmt) stmt() {}

// ExplainStmt is EXPLAIN [ANALYZE] <select>: plan the query and return the
// physical operator tree as a one-column table named "QUERY PLAN" instead of
// the query's rows. Under ANALYZE the query also executes, annotating every
// operator with its emitted row count and cumulative wall time.
type ExplainStmt struct {
	Analyze bool
	Query   *SelectStmt
}

func (*ExplainStmt) stmt() {}

// SetStmt is SET name = value: a session setting applied to the database's
// sampling configuration (e.g. SET workers = 4, SET samples = 1000).
type SetStmt struct {
	Name  string
	Value float64
}

func (*SetStmt) stmt() {}

// ShowStmt is SHOW STATS: report the engine-wide telemetry counters and the
// most recent query's trace as a (scope, name, value) result table. Being a
// plain result table, it flows unchanged through every query surface —
// local, driver, and the pip:// wire protocol.
type ShowStmt struct{}

func (*ShowStmt) stmt() {}

// Target is one SELECT target: an expression (possibly an aggregate call)
// with an optional alias.
type Target struct {
	Expr  Node
	Alias string
	Star  bool // SELECT *
}

// TableRef names a FROM table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Comparison is one WHERE conjunct: left op right.
type Comparison struct {
	Op          string // =, <>, <, <=, >, >=
	Left, Right Node
}

// Node is a scalar AST node.
type Node interface{ node() }

// NumLit is a numeric literal.
type NumLit float64

func (NumLit) node() {}

// StrLit is a string literal.
type StrLit string

func (StrLit) node() {}

// ColRef is a (possibly qualified) column reference.
type ColRef struct {
	Table  string // optional qualifier
	Column string
}

func (ColRef) node() {}

// String renders the reference.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// BinExpr is arithmetic.
type BinExpr struct {
	Op          byte // + - * /
	Left, Right Node
}

func (BinExpr) node() {}

// NegExpr is unary minus.
type NegExpr struct{ X Node }

func (NegExpr) node() {}

// Placeholder is a ? parameter marker. Idx is its 0-based ordinal in source
// order; execution substitutes the bound argument at that position.
// Executing a statement with placeholders but no bound arguments is an
// ErrBind error.
type Placeholder struct{ Idx int }

func (Placeholder) node() {}

// NumParams returns the number of ? placeholders in a parsed statement —
// the arity Prepare-and-bind execution enforces.
func NumParams(st Stmt) int {
	n := 0
	switch s := st.(type) {
	case *ExplainStmt:
		return NumParams(s.Query)
	case *SelectStmt:
		for _, tgt := range s.Targets {
			n += countParams(tgt.Expr)
		}
		for _, cmp := range s.Where {
			n += countParams(cmp.Left) + countParams(cmp.Right)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			for _, e := range row {
				n += countParams(e)
			}
		}
	}
	return n
}

// countParams counts placeholders in one scalar AST node.
func countParams(n Node) int {
	switch t := n.(type) {
	case nil:
		return 0
	case Placeholder:
		return 1
	case NegExpr:
		return countParams(t.X)
	case BinExpr:
		return countParams(t.Left) + countParams(t.Right)
	case FuncCall:
		c := 0
		for _, a := range t.Args {
			c += countParams(a)
		}
		return c
	default:
		return 0
	}
}

// FuncCall is a function or aggregate invocation. Star marks f(*).
type FuncCall struct {
	Name string
	Args []Node
	Star bool
}

func (FuncCall) node() {}

// IsAggregate reports whether the call is one of PIP's expectation
// aggregates (the probability-removing functions of §V-A). conf() is
// per-row by default and becomes the group aggregate aconf() only under
// GROUP BY; see IsConf.
func (f FuncCall) IsAggregate() bool {
	switch strings.ToLower(f.Name) {
	case "expected_sum", "expected_count", "expected_avg", "expected_max",
		"expected_stddev", "expected_variance",
		"expected_sum_hist", "expected_max_hist", "aconf":
		return true
	default:
		return false
	}
}

// IsConf reports whether the call is conf().
func (f FuncCall) IsConf() bool { return strings.EqualFold(f.Name, "conf") }
