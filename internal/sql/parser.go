package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
	// params counts ? placeholders seen so far; each occurrence is numbered
	// left to right in source order.
	params int
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Stmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().Text)
	}
	return st, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// acceptKw consumes the next token if it is the given keyword (case-folded).
func (p *Parser) acceptKw(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

// accept consumes the next token if it is the given symbol.
func (p *Parser) accept(sym string) bool {
	t := p.peek()
	if t.Kind == TokSymbol && t.Text == sym {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %q", strings.ToUpper(kw), p.peek().Text)
	}
	return nil
}

func (p *Parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errf("expected %q, got %q", sym, p.peek().Text)
	}
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return newParseError(p.src, p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch {
	case p.acceptKw("select"):
		return p.parseSelect()
	case p.acceptKw("create"):
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		return p.parseCreateTable()
	case p.acceptKw("insert"):
		return p.parseInsert()
	case p.acceptKw("drop"):
		if err := p.expectKw("table"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &DropStmt{Name: name}, nil
	case p.acceptKw("set"):
		return p.parseSet()
	case p.acceptKw("show"):
		if err := p.expectKw("stats"); err != nil {
			return nil, err
		}
		return &ShowStmt{}, nil
	case p.acceptKw("explain"):
		analyze := p.acceptKw("analyze")
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Analyze: analyze, Query: inner.(*SelectStmt)}, nil
	default:
		return nil, p.errf("expected SELECT, CREATE, INSERT, DROP, SET, SHOW or EXPLAIN, got %q", p.peek().Text)
	}
}

// parseSet parses SET name = value (value: a possibly-negated number).
func (p *Parser) parseSet() (Stmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("="); err != nil {
		return nil, err
	}
	neg := p.accept("-")
	t := p.peek()
	if !neg && t.Kind == TokIdent {
		// Boolean settings accept on/off/true/false sugar for 1/0.
		switch strings.ToLower(t.Text) {
		case "on", "true":
			p.pos++
			return &SetStmt{Name: strings.ToLower(name), Value: 1}, nil
		case "off", "false":
			p.pos++
			return &SetStmt{Name: strings.ToLower(name), Value: 0}, nil
		}
	}
	if t.Kind != TokNumber {
		return nil, p.errf("expected numeric value for SET %s, got %q", name, t.Text)
	}
	p.pos++
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, p.errf("invalid number %q", t.Text)
	}
	if neg {
		v = -v
	}
	return &SetStmt{Name: strings.ToLower(name), Value: v}, nil
}

func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errf("expected identifier, got %q", t.Text)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) parseCreateTable() (Stmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		// Optional type annotation is accepted and ignored (the engine is
		// dynamically typed).
		for p.peek().Kind == TokIdent && !isKeyword(p.peek().Text) {
			p.pos++
		}
		cols = append(cols, c)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CreateTableStmt{Name: name, Columns: cols}, nil
}

func isKeyword(s string) bool {
	switch strings.ToLower(s) {
	case "select", "from", "where", "group", "order", "by", "and", "as",
		"insert", "into", "values", "create", "table", "drop", "limit",
		"distinct", "desc", "asc":
		return true
	default:
		return false
	}
}

func (p *Parser) parseInsert() (Stmt, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(",") {
			return st, nil
		}
	}
}

func (p *Parser) parseSelect() (Stmt, error) {
	st := &SelectStmt{}
	st.Distinct = p.acceptKw("distinct")
	for {
		if p.accept("*") {
			st.Targets = append(st.Targets, Target{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tgt := Target{Expr: e}
			if p.acceptKw("as") {
				a, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				tgt.Alias = a
			} else if p.peek().Kind == TokIdent && !isKeyword(p.peek().Text) {
				tgt.Alias = p.advance().Text
			}
			st.Targets = append(st.Targets, tgt)
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name}
		if p.acceptKw("as") {
			a, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = a
		} else if p.peek().Kind == TokIdent && !isKeyword(p.peek().Text) {
			ref.Alias = p.advance().Text
		}
		st.From = append(st.From, ref)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("where") {
		for {
			cmp, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			st.Where = append(st.Where, cmp)
			if !p.acceptKw("and") {
				break
			}
		}
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, c)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		st.OrderBy = &c
		if p.acceptKw("desc") {
			st.Desc = true
		} else {
			p.acceptKw("asc")
		}
	}
	if p.acceptKw("limit") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errf("expected LIMIT count, got %q", t.Text)
		}
		p.pos++
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.Text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *Parser) parseColRef() (ColRef, error) {
	first, err := p.parseIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(".") {
		second, err := p.parseIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first, Column: second}, nil
	}
	return ColRef{Column: first}, nil
}

func (p *Parser) parseComparison() (Comparison, error) {
	left, err := p.parseExpr()
	if err != nil {
		return Comparison{}, err
	}
	t := p.peek()
	if t.Kind != TokSymbol {
		return Comparison{}, p.errf("expected comparison operator, got %q", t.Text)
	}
	op := t.Text
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		p.pos++
	default:
		return Comparison{}, p.errf("expected comparison operator, got %q", op)
	}
	if op == "!=" {
		op = "<>"
	}
	right, err := p.parseExpr()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Op: op, Left: left, Right: right}, nil
}

// parseExpr parses additive expressions.
func (p *Parser) parseExpr() (Node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: '+', Left: left, Right: right}
		case p.accept("-"):
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: '-', Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseTerm() (Node, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: '*', Left: left, Right: right}
		case p.accept("/"):
			right, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			left = BinExpr{Op: '/', Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseFactor() (Node, error) {
	t := p.peek()
	switch {
	case p.accept("-"):
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return NegExpr{X: x}, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept("?"):
		idx := p.params
		p.params++
		return Placeholder{Idx: idx}, nil
	case t.Kind == TokNumber:
		p.pos++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("invalid number %q", t.Text)
		}
		return NumLit(f), nil
	case t.Kind == TokString:
		p.pos++
		return StrLit(t.Text), nil
	case t.Kind == TokIdent:
		p.pos++
		// Function call?
		if p.accept("(") {
			call := FuncCall{Name: t.Text}
			if p.accept("*") {
				call.Star = true
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			if p.accept(")") {
				return call, nil
			}
			for {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return ColRef{Table: t.Text, Column: col}, nil
		}
		return ColRef{Column: t.Text}, nil
	default:
		return nil, p.errf("unexpected token %q", t.Text)
	}
}
