package sql

import (
	"strings"
	"testing"

	"pip/internal/core"
	"pip/internal/sampler"
)

func TestSetStatement(t *testing.T) {
	db := core.NewDB(sampler.DefaultConfig())
	cases := []struct {
		stmt  string
		check func(cfg sampler.Config) bool
	}{
		{`SET workers = 4`, func(c sampler.Config) bool { return c.Workers == 4 }},
		{`SET workers = 0`, func(c sampler.Config) bool { return c.Workers == 0 }},
		{`SET samples = 500`, func(c sampler.Config) bool { return c.FixedSamples == 500 }},
		{`SET max_samples = 20000`, func(c sampler.Config) bool { return c.MaxSamples == 20000 }},
		{`SET min_samples = 50`, func(c sampler.Config) bool { return c.MinSamples == 50 }},
		{`SET epsilon = 0.01`, func(c sampler.Config) bool { return c.Epsilon == 0.01 }},
		{`SET delta = 0.1`, func(c sampler.Config) bool { return c.Delta == 0.1 }},
		{`SET seed = 42`, func(c sampler.Config) bool { return c.WorldSeed == 42 }},
		{`SET vectorize = off`, func(c sampler.Config) bool { return c.DisableVectorize }},
		{`SET vectorize = on`, func(c sampler.Config) bool { return !c.DisableVectorize }},
		{`SET vectorize = false`, func(c sampler.Config) bool { return c.DisableVectorize }},
		{`SET vectorize = true`, func(c sampler.Config) bool { return !c.DisableVectorize }},
		{`SET vectorize = 0`, func(c sampler.Config) bool { return c.DisableVectorize }},
		{`SET vectorize = 1`, func(c sampler.Config) bool { return !c.DisableVectorize }},
	}
	for _, tc := range cases {
		if _, err := Exec(db, tc.stmt); err != nil {
			t.Fatalf("%s: %v", tc.stmt, err)
		}
		if !tc.check(db.Config()) {
			t.Fatalf("%s: configuration not applied: %+v", tc.stmt, db.Config())
		}
	}
}

func TestSetStatementErrors(t *testing.T) {
	db := core.NewDB(sampler.DefaultConfig())
	before := db.Config()
	cases := []struct {
		stmt    string
		wantSub string
	}{
		{`SET nonsense = 1`, "unknown setting"},
		{`SET workers = -1`, "non-negative"},
		{`SET workers = 1.5`, "integer"},
		{`SET epsilon = 2`, "(0, 1)"},
		{`SET max_samples = 0`, "positive"},
		{`SET workers`, "expected"},
		{`SET workers = banana`, "numeric"},
		{`SET vectorize = 2`, "on or off"},
		{`SET vectorize = maybe`, "numeric"},
	}
	for _, tc := range cases {
		_, err := Exec(db, tc.stmt)
		if err == nil {
			t.Fatalf("%s: expected error", tc.stmt)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.stmt, err, tc.wantSub)
		}
	}
	if db.Config() != before {
		t.Fatalf("failed SET mutated the configuration: %+v", db.Config())
	}
}

// TestSetWorkersAffectsQueries runs a sampled aggregate before and after
// SET workers and checks bit-identical results — the engine's determinism
// contract surfaced at the SQL level.
func TestSetWorkersAffectsQueries(t *testing.T) {
	cfg := sampler.DefaultConfig()
	cfg.FixedSamples = 300
	db := core.NewDB(cfg)
	mustExec := func(q string) {
		t.Helper()
		if _, err := Exec(db, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE t (v)`)
	for i := 0; i < 10; i++ {
		mustExec(`INSERT INTO t VALUES (CREATE_VARIABLE('Exponential', 0.2))`)
	}
	q := `SELECT expected_sum(v) FROM t WHERE v > 3`
	seq, err := Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(`SET workers = 8`)
	par, err := Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := seq.Tuples[0].Values[0].AsFloat()
	b, _ := par.Tuples[0].Values[0].AsFloat()
	if a != b {
		t.Fatalf("workers=8 changed the result: %v != %v", b, a)
	}
}
