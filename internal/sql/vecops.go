// Vectorized physical operators: the batch-at-a-time twin of operators.go.
// Operators exchange ctable.Batch column vectors through NextBatch(max)
// instead of one tuple per Next call, eliminating per-row interface
// dispatch and per-row allocation on the scan/filter/join spine. Every
// vectorized operator still implements the row Cursor interface (vecBase
// adapts NextBatch behind Next), so streaming Rows, eager drain, EXPLAIN
// and the span cursor all work unchanged on either engine.
//
// Bit-identity and EXPLAIN parity with the row engine are load-bearing
// (the vectest differential harness pins both):
//
//   - Row order: every operator processes and emits rows in exactly the
//     order of its row-at-a-time twin — scans advance the same snapshot,
//     joins emit matches in build-side input order per probe row, blocking
//     operators reuse the identical materialize-then-compute code.
//   - Row counts: NextBatch(max) is need-driven. An operator never emits
//     more than max rows and never pulls more input than its own need:
//     Filter pulls child chunks sized by its remaining need (within a
//     chunk of size s at most s rows pass, so the need is never
//     overshot), and joins under limit pressure (a streaming LIMIT above,
//     computed at lowering) pull probe rows one at a time while buffering
//     in-flight matches. EXPLAIN ANALYZE therefore reports identical
//     rows= on every operator under both engines.
//   - Errors: a per-row error inside a batch is held back until the rows
//     preceding it have been emitted, reproducing the row engine's
//     emit-then-fail order.
//
// Cancellation is checked once per batch boundary rather than per row.

package sql

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pip/internal/cond"
	"pip/internal/ctable"
)

// vecBatchSize is the target number of rows per column batch.
const vecBatchSize = 1024

// batchCap sizes a batch's initial allocation: the caller's need capped by
// the rows known to be available. Small queries allocate small batches (the
// demo catalog never pays for 1024-row columns); large scans still get one
// full-width allocation. Append grows the columns if the estimate is low.
func batchCap(avail, max int) int {
	if avail < 0 || avail > max {
		return max
	}
	if avail < 1 {
		return 1
	}
	return avail
}

// vecOperator is a physical operator that exchanges column batches. It is
// also a full row operator: vecBase supplies a Next facade over NextBatch,
// so a vectorized plan is a drop-in Cursor.
type vecOperator interface {
	operator
	// NextBatch returns the next batch of at most max rows. It never
	// returns an empty batch: the stream ends with (nil, io.EOF), fails
	// with (nil, err). The batch is valid until the following NextBatch
	// call on the same operator.
	NextBatch(max int) (*ctable.Batch, error)
}

// vecBase is the common core of vectorized operators: operator metadata
// plus the row-cursor facade.
type vecBase struct {
	opBase
	// self is the embedding operator; set at construction so the facade
	// can reach its NextBatch.
	self vecOperator
	// cur / ri iterate the current batch for the row facade.
	cur *ctable.Batch
	ri  int
}

// Next implements Cursor by iterating batches pulled from the embedding
// operator. Each returned tuple is freshly gathered, so it stays valid
// while the underlying batch memory is reused.
func (b *vecBase) Next() (*ctable.Tuple, error) {
	for {
		if b.cur != nil && b.ri < b.cur.Len() {
			t := b.cur.Row(b.ri)
			b.ri++
			return &t, nil
		}
		batch, err := b.self.NextBatch(vecBatchSize)
		if err != nil {
			b.cur = nil
			return nil, err
		}
		b.cur, b.ri = batch, 0
	}
}

// emitBatch closes the timing window and counts the emitted batch, passing
// the pair through for a tail-call from NextBatch. Row counting happens
// here (not in the Next facade), so rows= aggregates identically whether
// the plan is consumed row-wise or batch-wise.
func (b *vecBase) emitBatch(t0 time.Time, batch *ctable.Batch, err error) (*ctable.Batch, error) {
	if b.timed {
		//pipvet:allow detsource ANALYZE timing window, never feeds sampled state
		b.stats.elapsed += time.Since(t0)
	}
	if batch != nil {
		b.stats.rows += int64(batch.Len())
		b.stats.batches++
	}
	return batch, err
}

// materializeVec drains a vectorized operator into a tuple slice. Rows are
// gathered out of the batches (batch memory is producer-owned and reused),
// so the returned tuples are stable for the query's duration. Each batch is
// gathered through one flat allocation — the per-row Values slices are
// disjoint subslices with clamped capacity.
func materializeVec(op vecOperator, into *[]ctable.Tuple) error {
	for {
		b, err := op.NextBatch(vecBatchSize)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		gatherBatch(b, into)
	}
}

// materializeVecBatch drains a vectorized operator into one dense
// column-major batch (no selection vector). Cells are copied out of the
// producer-owned batches, so the result is stable for the query's duration;
// dense input batches copy over one bulk append per column.
func materializeVecBatch(op vecOperator, ncols int) (*ctable.Batch, error) {
	out := ctable.NewBatch(ncols, 0)
	for {
		b, err := op.NextBatch(vecBatchSize)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if b.Sel == nil {
			for c := range out.Cols {
				out.Cols[c] = append(out.Cols[c], b.Cols[c]...)
			}
			out.Conds = append(out.Conds, b.Conds...)
			continue
		}
		for _, phys := range b.Sel {
			for c := range out.Cols {
				out.Cols[c] = append(out.Cols[c], b.Cols[c][phys])
			}
			out.Conds = append(out.Conds, b.Conds[phys])
		}
	}
}

// gatherBatch appends every live row of b to into as stable tuples, using a
// single backing allocation for the batch's cells.
func gatherBatch(b *ctable.Batch, into *[]ctable.Tuple) {
	n, w := b.Len(), len(b.Cols)
	if n == 0 {
		return
	}
	flat := make([]ctable.Value, n*w)
	for k := 0; k < n; k++ {
		vals := flat[k*w : (k+1)*w : (k+1)*w]
		c := b.GatherRow(k, vals)
		*into = append(*into, ctable.Tuple{Values: vals, Cond: c})
	}
}

// lowerVecNode lowers a logical node onto its vectorized operator,
// recursively. pressure marks subtrees under a streaming LIMIT with no
// blocking operator in between: operators there pull probe rows one at a
// time so upstream row counts match the row engine exactly. Blocking
// operators (Sort, Distinct, Aggregate) drain their input fully in both
// engines and reset the flag for their children.
func lowerVecNode(env execEnv, n lnode, timed, pressure bool) (vecOperator, error) {
	mk := func(cols []string, kids ...operator) vecBase {
		return vecBase{opBase: opBase{name: n.op(), detail: n.detail(), cols: cols, kids: kids, timed: timed}}
	}
	switch t := n.(type) {
	case *lScan:
		pre := make([]ctable.Compare, len(t.pre))
		for i, p := range t.pre {
			pre[i] = p.cmp
		}
		o := &vecScanOp{vecBase: mk(t.outCols()), env: env, tuples: t.tuples, keep: t.keep, pre: pre}
		o.self = o
		return o, nil
	case *lJoin:
		left, err := lowerVecNode(env, t.left, timed, pressure)
		if err != nil {
			return nil, err
		}
		right, err := lowerVecNode(env, t.right, timed, false)
		if err != nil {
			return nil, err
		}
		cols := append(append([]string{}, left.Columns()...), right.Columns()...)
		o := &vecJoinOp{vecBase: mk(cols, left, right), env: env,
			left: left, right: right, hash: t.hash,
			leftKeys: t.leftKeys, rightKeys: t.rightKeys,
			nLeft: len(left.Columns()), pressure: pressure}
		o.self = o
		return o, nil
	case *lFilter:
		child, err := lowerVecNode(env, t.input, timed, pressure)
		if err != nil {
			return nil, err
		}
		pred := make(ctable.AndPred, len(t.preds))
		for i, p := range t.preds {
			pred[i] = p.cmp
		}
		o := &vecFilterOp{vecBase: mk(child.Columns(), child), child: child, pred: pred}
		o.predI = o.pred // boxed once; ApplyPredicate per row would re-box
		o.bp, _ = ctable.CompileBatchPred(pred)
		o.self = o
		return o, nil
	case *lProject:
		child, err := lowerVecNode(env, t.input, timed, pressure)
		if err != nil {
			return nil, err
		}
		b := mk(t.names, child)
		oenv := opScope(env, &b.opBase)
		o := &vecProjectOp{vecBase: b, env: oenv, child: child, spec: t}
		o.self = o
		return o, nil
	case *lAggregate:
		child, err := lowerVecNode(env, t.input, timed, false)
		if err != nil {
			return nil, err
		}
		b := mk(t.outNames, child)
		oenv := opScope(env, &b.opBase)
		o := &vecAggOp{vecBase: b, env: oenv, child: child, spec: t}
		o.self = o
		return o, nil
	case *lDistinct:
		child, err := lowerVecNode(env, t.input, timed, false)
		if err != nil {
			return nil, err
		}
		o := &vecDistinctOp{vecBase: mk(child.Columns(), child), child: child}
		o.self = o
		return o, nil
	case *lSort:
		child, err := lowerVecNode(env, t.input, timed, false)
		if err != nil {
			return nil, err
		}
		o := &vecSortOp{vecBase: mk(child.Columns(), child), child: child, col: t.col, colName: t.name, desc: t.desc}
		o.self = o
		return o, nil
	case *lLimit:
		child, err := lowerVecNode(env, t.input, timed, true)
		if err != nil {
			return nil, err
		}
		o := &vecLimitOp{vecBase: mk(child.Columns(), child), child: child, remaining: t.n}
		o.self = o
		return o, nil
	case *lEmpty:
		o := &vecEmptyOp{vecBase: mk(nil)}
		o.self = o
		return o, nil
	default:
		return nil, fmt.Errorf("sql: unknown plan node %T", n)
	}
}

// ---------------------------------------------------------------------------
// Scan

// vecScanOp is the batch twin of scanOp: it fills a column batch with up to
// max kept rows from the table snapshot, skipping trivially false
// conditions and prefiltered rows, and projecting the kept columns. The
// output batch is reused across calls.
type vecScanOp struct {
	vecBase
	env    execEnv
	tuples []ctable.Tuple
	keep   []int
	pre    []ctable.Compare
	out    *ctable.Batch
	i      int
	done   bool
}

// NextBatch implements vecOperator.
func (o *vecScanOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if err := o.env.ctxErr(); err != nil {
		o.done = true
		return o.emitBatch(t0, nil, err)
	}
	if o.out == nil {
		o.out = ctable.NewBatch(len(o.cols), batchCap(len(o.tuples)-o.i, max))
	}
	o.out.Reset()
	for o.out.Len() < max && o.i < len(o.tuples) {
		t := &o.tuples[o.i]
		o.i++
		if t.Cond.IsFalse() {
			continue
		}
		dropped := false
		for _, p := range o.pre {
			outcome, _, err := p.Eval(t)
			if err == nil && outcome == ctable.PredFalse {
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		if o.keep == nil {
			o.out.AppendRow(t.Values, t.Cond)
			continue
		}
		for n, c := range o.keep {
			o.out.Cols[n] = append(o.out.Cols[n], t.Values[c])
		}
		o.out.Conds = append(o.out.Conds, t.Cond)
	}
	if o.out.Len() == 0 {
		o.done = true
		return o.emitBatch(t0, nil, io.EOF)
	}
	return o.emitBatch(t0, o.out, nil)
}

// Close implements Cursor.
func (o *vecScanOp) Close() error {
	o.done = true
	return nil
}

// ---------------------------------------------------------------------------
// Filter

// vecFilterOp is the batch twin of filterOp. It is zero-copy: surviving
// rows are recorded in the child batch's selection vector (their possibly
// rewritten conditions overwrite the batch's condition slots), and the
// child batch itself is passed downstream. The child chunk size equals the
// caller's remaining need, so the filter never pulls input rows the row
// engine would not have pulled.
type vecFilterOp struct {
	vecBase
	child   vecOperator
	pred    ctable.AndPred
	predI   ctable.Predicate // pred boxed once for the row-at-a-time path
	bp      *ctable.BatchPred
	row     []ctable.Value
	sel     []int
	pendErr error
	done    bool
}

// NextBatch implements vecOperator.
func (o *vecFilterOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if o.pendErr != nil {
		o.done = true
		return o.emitBatch(t0, nil, o.pendErr)
	}
	if o.row == nil {
		o.row = make([]ctable.Value, len(o.cols))
	}
	for {
		b, err := o.child.NextBatch(max)
		if err != nil {
			o.done = true
			return o.emitBatch(t0, nil, err)
		}
		n := b.Len()
		sel := o.sel[:0]
		var rowErr error
		for k := 0; k < n; k++ {
			phys := b.RowIdx(k)
			if o.bp != nil {
				// Columnar fast path: fully deterministic rows are decided
				// straight from the batch columns; a kept row's condition is
				// untouched, exactly as ApplyPredicate leaves PredTrue rows.
				if keep, ok := o.bp.EvalRow(b, phys); ok {
					if keep {
						sel = append(sel, phys)
					}
					continue
				}
			}
			c := b.GatherRow(k, o.row)
			t := ctable.Tuple{Values: o.row, Cond: c}
			kept, keep, err := ctable.ApplyPredicate(&t, o.predI)
			if err != nil {
				rowErr = err
				break
			}
			if !keep {
				continue
			}
			b.Conds[phys] = kept.Cond
			sel = append(sel, phys)
		}
		if rowErr != nil && len(sel) == 0 {
			o.done = true
			return o.emitBatch(t0, nil, rowErr)
		}
		if len(sel) > 0 {
			o.pendErr = rowErr
			o.sel = sel
			b.Sel = sel
			return o.emitBatch(t0, b, nil)
		}
		o.sel = sel
		// Whole chunk filtered out: pull the next one.
	}
}

// Close implements Cursor.
func (o *vecFilterOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Project

// vecProjectOp is the batch twin of projectOp: each input row is projected
// through the shared finishProject unit (sampling functions included) and
// scattered into a fresh dense output batch. Rows map 1:1, so the chunk
// size is simply the caller's need.
type vecProjectOp struct {
	vecBase
	env     execEnv
	child   vecOperator
	spec    *lProject
	row     []ctable.Value
	out     *ctable.Batch
	pendErr error
	done    bool
}

// NextBatch implements vecOperator.
func (o *vecProjectOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if o.pendErr != nil {
		o.done = true
		return o.emitBatch(t0, nil, o.pendErr)
	}
	b, err := o.child.NextBatch(max)
	if err != nil {
		o.done = true
		return o.emitBatch(t0, nil, err)
	}
	if o.row == nil {
		o.row = make([]ctable.Value, len(o.child.Columns()))
		o.out = ctable.NewBatch(len(o.cols), batchCap(b.Len(), max))
	}
	o.out.Reset()
	n := b.Len()
	for k := 0; k < n; k++ {
		c := b.GatherRow(k, o.row)
		t := ctable.Tuple{Values: o.row, Cond: c}
		res, err := finishProject(o.env, o.spec, &t)
		if err != nil {
			if o.out.Len() == 0 {
				o.done = true
				return o.emitBatch(t0, nil, err)
			}
			o.pendErr = err
			break
		}
		o.out.AppendTuple(res)
	}
	return o.emitBatch(t0, o.out, nil)
}

// Close implements Cursor.
func (o *vecProjectOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Joins

// vecJoinOp is the batch twin of hashJoinOp and nestedLoopOp (hash selects
// which). The build (right) side materializes once; probe rows stream
// through in chunks — single rows under limit pressure — and every match
// is emitted in build-side input order, buffering in-flight matches across
// NextBatch calls so no probe row is pulled before its predecessors'
// matches have been delivered.
type vecJoinOp struct {
	vecBase
	env                 execEnv
	left, right         vecOperator
	hash                bool
	leftKeys, rightKeys []int
	nLeft               int
	pressure            bool

	bb            *ctable.Batch // build side, dense column-major
	anyBuildFalse bool          // some build row has a false condition
	buckets       map[string][]int
	symb          []int
	keyBuf        []byte
	built         bool

	pb        *ctable.Batch // current probe batch
	pi        int           // next logical probe row in pb
	pphys     int           // physical index of the in-flight probe row
	probeCond cond.Condition
	probing   bool // pphys/matches hold an in-flight probe row
	matches   []int
	all       bool
	mi        int

	out     *ctable.Batch
	pendErr error
	done    bool
}

// NextBatch implements vecOperator.
func (o *vecJoinOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if o.pendErr != nil {
		o.done = true
		return o.emitBatch(t0, nil, o.pendErr)
	}
	if err := o.env.ctxErr(); err != nil {
		o.done = true
		return o.emitBatch(t0, nil, err)
	}
	if !o.built {
		bb, err := materializeVecBatch(o.right, len(o.right.Columns()))
		if err != nil {
			o.done = true
			return o.emitBatch(t0, nil, err)
		}
		o.bb = bb
		for _, c := range bb.Conds {
			if c.IsFalse() {
				o.anyBuildFalse = true
				break
			}
		}
		if o.hash {
			o.buckets = make(map[string][]int, len(bb.Conds))
			for i := range bb.Conds {
				kb, ok := o.keyBuf[:0], true
				for _, c := range o.rightKeys {
					v := bb.Cols[c][i]
					if v.IsSymbolic() {
						ok = false
						break
					}
					kb = v.AppendBinaryKey(kb)
				}
				o.keyBuf = kb
				if ok {
					o.buckets[string(kb)] = append(o.buckets[string(kb)], i)
				} else {
					o.symb = append(o.symb, i)
				}
			}
		}
		o.built = true
	}
	if o.out == nil {
		o.out = ctable.NewBatch(len(o.cols), batchCap(len(o.bb.Conds), max))
	}
	o.out.Reset()
	for o.out.Len() < max {
		if !o.probing {
			// Advance to the next probe row, pulling a new chunk when the
			// current batch is exhausted.
			if o.pb == nil || o.pi >= o.pb.Len() {
				chunk := vecBatchSize
				if o.pressure {
					chunk = 1
				}
				b, err := o.left.NextBatch(chunk)
				if err != nil {
					if o.out.Len() > 0 {
						o.pendErr = err
						return o.emitBatch(t0, o.out, nil)
					}
					o.done = true
					return o.emitBatch(t0, nil, err)
				}
				o.pb, o.pi = b, 0
			}
			// The in-flight probe row is read in place: pb stays valid until
			// the next left.NextBatch, which only happens after every row of
			// this batch has finished probing.
			o.pphys = o.pb.RowIdx(o.pi)
			o.probeCond = o.pb.Conds[o.pphys]
			o.pi++
			o.mi = 0
			o.all = !o.hash
			o.matches = nil
			if o.hash {
				kb, ok := o.keyBuf[:0], true
				for _, c := range o.leftKeys {
					v := o.pb.Cols[c][o.pphys]
					if v.IsSymbolic() {
						ok = false
						break
					}
					kb = v.AppendBinaryKey(kb)
				}
				o.keyBuf = kb
				if ok {
					o.matches = mergeSorted(o.buckets[string(kb)], o.symb)
				} else {
					o.all = true
				}
			}
			o.probing = true
		}
		n := len(o.matches)
		if o.all {
			n = len(o.bb.Conds)
		}
		if o.all && !o.anyBuildFalse && o.probeCond.IsTrivialTrue() {
			// Bulk run: every pair of this cross-product probe row survives,
			// and each pair's condition is exactly the build row's (And with
			// a trivially-true probe condition is the identity), so right
			// columns and conditions copy over one bulk append per column.
			m := n - o.mi
			if r := max - o.out.Len(); m > r {
				m = r
			}
			lo, hi := o.mi, o.mi+m
			for c := 0; c < o.nLeft; c++ {
				v := o.pb.Cols[c][o.pphys]
				for i := 0; i < m; i++ {
					o.out.Cols[c] = append(o.out.Cols[c], v)
				}
			}
			for c := o.nLeft; c < len(o.out.Cols); c++ {
				o.out.Cols[c] = append(o.out.Cols[c], o.bb.Cols[c-o.nLeft][lo:hi]...)
			}
			o.out.Conds = append(o.out.Conds, o.bb.Conds[lo:hi]...)
			o.mi = hi
		} else {
			for o.mi < n && o.out.Len() < max {
				j := o.mi
				if !o.all {
					j = o.matches[o.mi]
				}
				o.mi++
				nc := o.probeCond.And(o.bb.Conds[j])
				if nc.IsFalse() {
					continue
				}
				for c := 0; c < o.nLeft; c++ {
					o.out.Cols[c] = append(o.out.Cols[c], o.pb.Cols[c][o.pphys])
				}
				for c := o.nLeft; c < len(o.out.Cols); c++ {
					o.out.Cols[c] = append(o.out.Cols[c], o.bb.Cols[c-o.nLeft][j])
				}
				o.out.Conds = append(o.out.Conds, nc)
			}
		}
		if o.mi >= n {
			o.probing = false
		}
	}
	return o.emitBatch(t0, o.out, nil)
}

// Close implements Cursor.
func (o *vecJoinOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Blocking operators: Aggregate, Distinct, Sort

// emitTable streams a materialized result table in batches of at most max
// rows, tracking the emission cursor in *i.
func emitTable(vb *vecBase, out **ctable.Batch, result *ctable.Table, i *int, max int) *ctable.Batch {
	if *i >= len(result.Tuples) {
		return nil
	}
	if *out == nil {
		*out = ctable.NewBatch(len(vb.cols), batchCap(len(result.Tuples)-*i, max))
	}
	(*out).Reset()
	for (*out).Len() < max && *i < len(result.Tuples) {
		(*out).AppendTuple(&result.Tuples[*i])
		*i++
	}
	return *out
}

// vecAggOp is the batch twin of aggOp: it stages the child's rows through
// the shared stageAggRow unit, evaluates every group with the shared
// computeAgg, and emits the result in batches.
type vecAggOp struct {
	vecBase
	env    execEnv
	child  vecOperator
	spec   *lAggregate
	result *ctable.Table
	out    *ctable.Batch
	i      int
	done   bool
}

// NextBatch implements vecOperator.
func (o *vecAggOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if o.result == nil {
		a := o.spec
		sch := make(ctable.Schema, len(a.stagedNames))
		for i, n := range a.stagedNames {
			sch[i] = ctable.Column{Name: n}
		}
		staged := &ctable.Table{Name: "agg_input", Schema: sch}
		row := make([]ctable.Value, len(o.child.Columns()))
		for {
			b, err := o.child.NextBatch(vecBatchSize)
			if err == io.EOF {
				break
			}
			if err != nil {
				o.done = true
				return o.emitBatch(t0, nil, err)
			}
			for k := 0; k < b.Len(); k++ {
				c := b.GatherRow(k, row)
				t := ctable.Tuple{Values: row, Cond: c}
				st, err := stageAggRow(a, &t)
				if err != nil {
					o.done = true
					return o.emitBatch(t0, nil, err)
				}
				staged.Tuples = append(staged.Tuples, st)
			}
		}
		res, err := computeAgg(o.env, a, staged)
		if err != nil {
			o.done = true
			return o.emitBatch(t0, nil, err)
		}
		o.result = res
	}
	b := emitTable(&o.vecBase, &o.out, o.result, &o.i, max)
	if b == nil {
		o.done = true
		return o.emitBatch(t0, nil, io.EOF)
	}
	return o.emitBatch(t0, b, nil)
}

// Close implements Cursor.
func (o *vecAggOp) Close() error {
	o.done = true
	return o.closeKids()
}

// vecDistinctOp is the batch twin of distinctOp: materialize, coalesce
// duplicates via ctable.Distinct, emit in batches.
type vecDistinctOp struct {
	vecBase
	child  vecOperator
	result *ctable.Table
	out    *ctable.Batch
	i      int
	done   bool
}

// NextBatch implements vecOperator.
func (o *vecDistinctOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if o.result == nil {
		var rows []ctable.Tuple
		if err := materializeVec(o.child, &rows); err != nil {
			o.done = true
			return o.emitBatch(t0, nil, err)
		}
		o.result = ctable.Distinct(&ctable.Table{Tuples: rows})
	}
	b := emitTable(&o.vecBase, &o.out, o.result, &o.i, max)
	if b == nil {
		o.done = true
		return o.emitBatch(t0, nil, io.EOF)
	}
	return o.emitBatch(t0, b, nil)
}

// Close implements Cursor.
func (o *vecDistinctOp) Close() error {
	o.done = true
	return o.closeKids()
}

// vecSortOp is the batch twin of sortOp: materialize, stable-sort by one
// output column, emit in batches.
type vecSortOp struct {
	vecBase
	child   vecOperator
	col     int
	colName string
	desc    bool
	rows    []ctable.Tuple
	out     *ctable.Batch
	sorted  bool
	i       int
	done    bool
}

// NextBatch implements vecOperator.
func (o *vecSortOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done {
		return o.emitBatch(t0, nil, io.EOF)
	}
	if !o.sorted {
		if err := materializeVec(o.child, &o.rows); err != nil {
			o.done = true
			return o.emitBatch(t0, nil, err)
		}
		var sortErr error
		sort.SliceStable(o.rows, func(i, j int) bool {
			c, ok := o.rows[i].Values[o.col].Compare(o.rows[j].Values[o.col])
			if !ok {
				sortErr = fmt.Errorf("sql: ORDER BY over symbolic column %s", o.colName)
				return false
			}
			if o.desc {
				return c > 0
			}
			return c < 0
		})
		if sortErr != nil {
			o.done = true
			return o.emitBatch(t0, nil, sortErr)
		}
		o.sorted = true
	}
	result := &ctable.Table{Tuples: o.rows}
	b := emitTable(&o.vecBase, &o.out, result, &o.i, max)
	if b == nil {
		o.done = true
		return o.emitBatch(t0, nil, io.EOF)
	}
	return o.emitBatch(t0, b, nil)
}

// Close implements Cursor.
func (o *vecSortOp) Close() error {
	o.done = true
	return o.closeKids()
}

// ---------------------------------------------------------------------------
// Limit / Result

// vecLimitOp is the batch twin of limitOp: it forwards its remaining
// budget as the child's chunk size, so upstream operators stop being
// pulled the moment the limit fills — the vectorized analogue of the row
// engine's per-row short circuit.
type vecLimitOp struct {
	vecBase
	child     vecOperator
	remaining int
	done      bool
}

// NextBatch implements vecOperator.
func (o *vecLimitOp) NextBatch(max int) (*ctable.Batch, error) {
	t0 := o.begin()
	if o.done || o.remaining <= 0 {
		o.done = true
		return o.emitBatch(t0, nil, io.EOF)
	}
	n := max
	if o.remaining < n {
		n = o.remaining
	}
	b, err := o.child.NextBatch(n)
	if err != nil {
		o.done = true
		return o.emitBatch(t0, nil, err)
	}
	b = b.Head(n)
	o.remaining -= b.Len()
	return o.emitBatch(t0, b, nil)
}

// Close implements Cursor.
func (o *vecLimitOp) Close() error {
	o.done = true
	return o.closeKids()
}

// vecEmptyOp is the zero-row relation of a constant-false WHERE.
type vecEmptyOp struct {
	vecBase
}

// NextBatch implements vecOperator.
func (o *vecEmptyOp) NextBatch(int) (*ctable.Batch, error) {
	return nil, io.EOF
}

// Close implements Cursor.
func (o *vecEmptyOp) Close() error { return nil }
