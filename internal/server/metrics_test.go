package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// scrapeMetrics fetches /metrics from a test server.
func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (.+)$`)
)

// lintExposition is the promtext lint: every line must be a well-formed
// HELP/TYPE comment or a sample, every sample's family must be declared by
// HELP and TYPE before its first sample, and every value must parse as a
// float. Returns the per-family sample values keyed by full series name
// (family + label set).
func lintExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	declared := map[string]bool{}
	typed := map[string]string{}
	series := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := helpRe.FindStringSubmatch(line); m != nil {
				declared[m[1]] = true
				continue
			}
			if m := typeRe.FindStringSubmatch(line); m != nil {
				typed[m[1]] = m[2]
				continue
			}
			t.Fatalf("malformed comment line: %q", line)
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, valText := m[1], m[2], m[3]
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if typed[strings.TrimSuffix(name, suffix)] == "histogram" {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if !declared[family] || typed[family] == "" {
			t.Fatalf("sample %q precedes its HELP/TYPE declaration", line)
		}
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("sample %q: value does not parse: %v", line, err)
		}
		series[name+labels] = val
	}
	return series
}

// TestMetricsExposition boots a server, drives traffic over both
// statement endpoints (including a failing statement), and lints the
// resulting exposition: well-formed text, all expected families present,
// histogram bucket counts cumulative with +Inf == count.
func TestMetricsExposition(t *testing.T) {
	addr, _, ts := newTestServer(t, 7)
	client := NewClient(addr)
	ctx := context.Background()
	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)

	if _, err := sess.Exec(ctx, "CREATE TABLE t (v)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Query(ctx, "SELECT v FROM t")
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	if _, err := sess.Exec(ctx, "SELEKT nonsense"); err == nil {
		t.Fatal("malformed statement did not error")
	}

	text := scrapeMetrics(t, ts.URL)
	series := lintExposition(t, text)

	for _, family := range []string{"pip_queries_total", "pip_queries_inflight",
		"pip_sessions_total", "pip_query_errors_total", "pip_rows_streamed_total"} {
		if _, ok := series[family]; !ok {
			t.Fatalf("flat family %s missing from exposition", family)
		}
	}
	if series["pip_queries_inflight"] != 0 {
		t.Fatalf("pip_queries_inflight = %g after all statements finished, want 0",
			series["pip_queries_inflight"])
	}
	if series["pip_query_errors_total"] < 1 {
		t.Fatal("failed statement not counted in pip_query_errors_total")
	}

	for _, family := range []string{"pip_query_seconds", "pip_query_rows", "pip_query_samples"} {
		for _, ep := range queryEndpoints {
			count, ok := series[fmt.Sprintf("%s_count{endpoint=%q}", family, ep)]
			if !ok {
				t.Fatalf("histogram %s missing series for endpoint %s", family, ep)
			}
			inf, ok := series[fmt.Sprintf("%s_bucket{endpoint=%q,le=\"+Inf\"}", family, ep)]
			if !ok || inf != count {
				t.Fatalf("%s{endpoint=%s}: +Inf bucket %g != count %g", family, ep, inf, count)
			}
			// Bucket counts must be cumulative (non-decreasing in le order).
			prev := -1.0
			var last float64
			for _, line := range strings.Split(text, "\n") {
				prefix := fmt.Sprintf("%s_bucket{endpoint=%q,le=", family, ep)
				if !strings.HasPrefix(line, prefix) {
					continue
				}
				v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
				if err != nil {
					t.Fatalf("bucket line %q: %v", line, err)
				}
				if v < prev {
					t.Fatalf("%s{endpoint=%s}: bucket counts not cumulative: %g after %g", family, ep, v, prev)
				}
				prev, last = v, v
			}
			if last != count {
				t.Fatalf("%s{endpoint=%s}: final bucket %g != count %g", family, ep, last, count)
			}
		}
	}
	// The query endpoint streamed 3 rows; latency observations must exist.
	if series[`pip_query_seconds_count{endpoint="query"}`] < 1 {
		t.Fatal("no latency observations on the query endpoint")
	}
}

// TestInflightNeverNegative hammers both endpoints concurrently with a mix
// of succeeding and failing statements; afterwards the in-flight gauge
// must read exactly zero (the historical bug double-decremented on error
// paths, driving it negative).
func TestInflightNeverNegative(t *testing.T) {
	addr, srv, ts := newTestServer(t, 11)
	client := NewClient(addr)
	ctx := context.Background()
	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	if _, err := sess.Exec(ctx, "CREATE TABLE t (v)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if (g+i)%3 == 0 {
					_, _ = sess.Exec(ctx, "SELEKT broken") // parse error path
					continue
				}
				rows, err := sess.Query(ctx, "SELECT v FROM t")
				if err != nil {
					continue
				}
				for rows.Next() {
				}
				rows.Close()
			}
		}(g)
	}
	wg.Wait()

	if got := srv.met.queriesInflight.Load(); got != 0 {
		t.Fatalf("pip_queries_inflight = %d after drain, want 0", got)
	}
	series := lintExposition(t, scrapeMetrics(t, ts.URL))
	if series["pip_queries_inflight"] != 0 {
		t.Fatalf("scraped inflight %g, want 0", series["pip_queries_inflight"])
	}
}

// TestQueryTrackerIdempotent pins the defer-safety contract: calling
// finish twice (explicit + deferred safety net) decrements the in-flight
// gauge exactly once.
func TestQueryTrackerIdempotent(t *testing.T) {
	m := newMetrics()
	qt := m.startQuery("query")
	if got := m.queriesInflight.Load(); got != 1 {
		t.Fatalf("inflight after start = %d, want 1", got)
	}
	qt.finish(5, 100, nil, false)
	qt.finish(0, -1, nil, false) // the deferred safety net
	if got := m.queriesInflight.Load(); got != 0 {
		t.Fatalf("inflight after double finish = %d, want 0", got)
	}
	if got := m.rowsTotal.Load(); got != 5 {
		t.Fatalf("rows recorded %d, want 5 (second finish must be a no-op)", got)
	}
	var nilTracker *queryTracker
	nilTracker.finish(0, -1, nil, false) // nil-safe
}
