package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"pip"
	"pip/internal/repl"
	"pip/internal/wal"
)

// replPair boots a primary server (durable, replication endpoints mounted
// on the query handler) and a replica server following it, both over real
// HTTP, and returns their addresses plus the live repl objects.
func replPair(t *testing.T, seed uint64) (primAddr, replAddr string, prim *repl.Primary, f *repl.Follower) {
	t.Helper()

	pdb := pip.Open(pip.Options{Seed: seed})
	store, _, err := wal.Open(t.TempDir(), pdb.Core(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	prim = repl.NewPrimary(store, seed)
	prim.PingEvery = 20 * time.Millisecond
	psrv := New(Config{DB: pdb, WAL: store, Repl: prim})
	pts := httptest.NewServer(psrv.Handler())
	t.Cleanup(func() { pts.Close(); psrv.Close() })

	rdb := pip.Open(pip.Options{Seed: seed})
	f = repl.NewFollower(rdb.Core(), repl.FollowerOptions{
		Primary:          pts.URL,
		ReplicaID:        "r1",
		Seed:             seed,
		ReconnectBackoff: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	rsrv := New(Config{DB: rdb, Follower: f})
	rts := httptest.NewServer(rsrv.Handler())
	t.Cleanup(func() { rts.Close(); rsrv.Close() })

	return pts.Listener.Addr().String(), rts.Listener.Addr().String(), prim, f
}

// queryOneFloat runs q in a fresh session against addr and returns the
// single float cell of the single result row.
func queryOneFloat(t *testing.T, addr, q string) float64 {
	t.Helper()
	ctx := context.Background()
	sess, err := NewClient(addr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	rows, err := sess.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("%s: no rows (err %v)", q, rows.Err())
	}
	n, err := rows.Row()[0].Native()
	if err != nil {
		t.Fatal(err)
	}
	f, ok := n.(float64)
	if !ok {
		t.Fatalf("%s: cell is %T, want float64", q, n)
	}
	return f
}

// TestReplicationOverTheWire is the topology acceptance test at the server
// layer: writes land on the primary through the ordinary wire protocol,
// stream to the replica, and a remote query answered by the replica is
// bit-identical to the primary's answer; remote writes to the replica fail
// with the typed read-only error.
func TestReplicationOverTheWire(t *testing.T) {
	primAddr, replAddr, _, f := replPair(t, 7)
	ctx := context.Background()
	sess, err := NewClient(primAddr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	for _, q := range []string{
		"CREATE TABLE orders (cust, price)",
		"INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))",
		"INSERT INTO orders VALUES ('Ann', CREATE_VARIABLE('Normal', 80, 5)), ('Bob', 42.5)",
	} {
		if _, err := sess.Exec(ctx, q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := f.WaitForSeq(wctx, 3); err != nil {
		t.Fatalf("replica never caught up: %v", err)
	}

	const agg = "SELECT expected_sum(price) AS r FROM orders"
	pv, rv := queryOneFloat(t, primAddr, agg), queryOneFloat(t, replAddr, agg)
	if math.Float64bits(pv) != math.Float64bits(rv) {
		t.Fatalf("replica answer %v != primary answer %v (bit-identity broken)", rv, pv)
	}

	// A remote write to the replica fails with the typed sentinel, carried
	// through the wire error codes.
	rsess, err := NewClient(replAddr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rsess.Close(ctx)
	if _, err := rsess.Exec(ctx, "INSERT INTO orders VALUES ('Mal', 1)"); !errors.Is(err, pip.ErrReadOnly) {
		t.Fatalf("remote replica write: got %v, want ErrReadOnly through the wire", err)
	}
	// SET stays allowed remotely: session settings are replica-local.
	if _, err := rsess.Exec(ctx, "SET max_samples = 512"); err != nil {
		t.Fatalf("SET on a replica session over the wire: %v", err)
	}
}

// TestReplMetricsExposition lints the pip_repl_* families on both sides of
// a live topology and pins the values an operator alerts on: replica lag
// zero after catch-up, fail-stop gauge zero, per-replica labelled series.
func TestReplMetricsExposition(t *testing.T) {
	primAddr, replAddr, prim, f := replPair(t, 7)
	ctx := context.Background()
	sess, err := NewClient(primAddr).Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(ctx)
	if _, err := sess.Exec(ctx, "CREATE TABLE t (v)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "INSERT INTO t VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := f.WaitForSeq(wctx, 2); err != nil {
		t.Fatal(err)
	}
	// Wait for the ack to land so the primary's lag series reads zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := prim.Stats()
		if len(st.Replicas) == 1 && st.Replicas[0].LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never converged: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	pseries := lintExposition(t, scrapeMetrics(t, "http://"+primAddr))
	for _, family := range []string{
		"pip_repl_role_primary", "pip_repl_last_seq", "pip_repl_connected_replicas",
		"pip_repl_known_replicas", "pip_repl_records_shipped_total",
		"pip_repl_bytes_shipped_total", "pip_repl_snapshots_shipped_total",
		"pip_repl_streams_total",
	} {
		if _, ok := pseries[family]; !ok {
			t.Fatalf("primary exposition missing %s", family)
		}
	}
	if pseries["pip_repl_connected_replicas"] != 1 {
		t.Fatalf("pip_repl_connected_replicas = %g, want 1", pseries["pip_repl_connected_replicas"])
	}
	if pseries["pip_repl_records_shipped_total"] < 2 {
		t.Fatalf("pip_repl_records_shipped_total = %g, want >= 2", pseries["pip_repl_records_shipped_total"])
	}
	for _, s := range []string{
		fmt.Sprintf("pip_repl_replica_acked_seq{replica=%q}", "r1"),
		fmt.Sprintf("pip_repl_replica_lag_records{replica=%q}", "r1"),
	} {
		if _, ok := pseries[s]; !ok {
			t.Fatalf("primary exposition missing labelled series %s", s)
		}
	}
	if lag := pseries[fmt.Sprintf("pip_repl_replica_lag_records{replica=%q}", "r1")]; lag != 0 {
		t.Fatalf("replica lag series = %g after catch-up, want 0", lag)
	}

	rseries := lintExposition(t, scrapeMetrics(t, "http://"+replAddr))
	for _, family := range []string{
		"pip_repl_role_replica", "pip_repl_applied_seq", "pip_repl_primary_seq",
		"pip_repl_lag_records", "pip_repl_records_applied_total",
		"pip_repl_bytes_applied_total", "pip_repl_snapshot_loads_total",
		"pip_repl_reconnects_total", "pip_repl_connected", "pip_repl_fail_stopped",
	} {
		if _, ok := rseries[family]; !ok {
			t.Fatalf("replica exposition missing %s", family)
		}
	}
	if rseries["pip_repl_applied_seq"] != 2 {
		t.Fatalf("pip_repl_applied_seq = %g, want 2", rseries["pip_repl_applied_seq"])
	}
	if rseries["pip_repl_fail_stopped"] != 0 {
		t.Fatalf("pip_repl_fail_stopped = %g on a healthy replica", rseries["pip_repl_fail_stopped"])
	}
	if rseries["pip_repl_records_applied_total"] != 2 {
		t.Fatalf("pip_repl_records_applied_total = %g, want 2", rseries["pip_repl_records_applied_total"])
	}
}
