package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"pip"
	"pip/internal/sampler"
)

// session is one remote client's state: a database view with private
// sampling settings (pip.DB.Session) over the server's shared catalog, and
// the statements prepared through it. Statement-level requests name the
// session by id; concurrent requests on one session are safe but share its
// settings.
type session struct {
	id string
	db *pip.DB

	mu       sync.Mutex
	stmts    map[int64]*pip.Stmt
	nextStmt int64
	lastUsed time.Time
	inflight int
}

// touch marks the session used now and pins it against the idle sweep for
// the duration of a request; the returned func releases the pin.
func (s *session) touch() func() {
	s.mu.Lock()
	s.lastUsed = time.Now()
	s.inflight++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		s.lastUsed = time.Now()
		s.inflight--
		s.mu.Unlock()
	}
}

// prepare parses a statement and registers it under a fresh id.
func (s *session) prepare(query string) (int64, *pip.Stmt, error) {
	st, err := s.db.Prepare(query)
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	s.nextStmt++
	id := s.nextStmt
	s.stmts[id] = st
	s.mu.Unlock()
	return id, st, nil
}

// stmt resolves a prepared statement id.
func (s *session) stmt(id int64) (*pip.Stmt, error) {
	s.mu.Lock()
	st := s.stmts[id]
	s.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("server: session %s has no prepared statement %d", s.id, id)
	}
	return st, nil
}

// closeStmt releases a prepared statement id (idempotent).
func (s *session) closeStmt(id int64) {
	s.mu.Lock()
	delete(s.stmts, id)
	s.mu.Unlock()
}

// sessionManager owns the server's session table: creation (with initial
// settings), lookup, explicit close, and an idle sweep that reclaims
// sessions whose clients vanished without a DELETE.
type sessionManager struct {
	base *pip.DB
	idle time.Duration

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
}

// newSessionManager creates a manager over the shared database. idle <= 0
// disables expiry.
func newSessionManager(base *pip.DB, idle time.Duration) *sessionManager {
	return &sessionManager{base: base, idle: idle, sessions: map[string]*session{}}
}

// create allocates a session, applying the requested settings before it
// serves its first statement.
func (m *sessionManager) create(settings map[string]json.Number) (*session, error) {
	db := m.base.Session()
	if err := applySettings(db, settings); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.nextID++
	id := fmt.Sprintf("s%d-%08x", m.nextID, randTag())
	s := &session{id: id, db: db, stmts: map[int64]*pip.Stmt{}, lastUsed: time.Now()}
	m.sessions[id] = s
	m.mu.Unlock()
	return s, nil
}

// randTag draws 32 random bits to make session ids unguessable across
// server restarts (they are capability tokens of a sort, not security).
func randTag() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// acquire resolves a session id and pins it against the idle sweep in one
// step (lookup and touch under the manager lock, so the sweeper can never
// reclaim a session between resolution and use); the returned release
// func unpins it. A miss wraps ErrSessionUnknown.
func (m *sessionManager) acquire(id string) (*session, func(), error) {
	m.mu.Lock()
	s := m.sessions[id]
	if s == nil {
		m.mu.Unlock()
		return nil, nil, fmt.Errorf("%w %q (closed, expired, or never created)", ErrSessionUnknown, id)
	}
	release := s.touch()
	m.mu.Unlock()
	return s, release, nil
}

// close removes a session; its in-flight requests finish normally.
func (m *sessionManager) close(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sessions[id]; !ok {
		return fmt.Errorf("%w %q (closed, expired, or never created)", ErrSessionUnknown, id)
	}
	delete(m.sessions, id)
	return nil
}

// count returns the number of live sessions.
func (m *sessionManager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// sweep expires sessions idle beyond the configured timeout with no
// requests in flight, returning how many it reclaimed.
func (m *sessionManager) sweep(now time.Time) int {
	if m.idle <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, s := range m.sessions {
		s.mu.Lock()
		expired := s.inflight == 0 && now.Sub(s.lastUsed) > m.idle
		s.mu.Unlock()
		if expired {
			delete(m.sessions, id)
			n++
		}
	}
	return n
}

// applySettings applies session-creation settings with the same names and
// bounds as the SQL SET statement. seed is parsed as a full-precision
// uint64 (SET's float64 path cannot express every seed above 2^53).
func applySettings(db *pip.DB, settings map[string]json.Number) error {
	for k, raw := range settings {
		bad := func(want string) error {
			return fmt.Errorf("%w: invalid setting %s=%s (%s)", ErrBadRequest, k, raw, want)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(raw.String(), 10, 64)
			if err != nil {
				return bad("want a non-negative integer")
			}
			if n == 0 {
				// Parity with pip.Options and in-process DSNs: the zero
				// seed is replaced by the engine's fixed default, so
				// seed=0 means the same thing local and remote.
				n = sampler.DefaultConfig().WorldSeed
			}
			db.Core().UpdateConfig(func(cfg *sampler.Config) { cfg.WorldSeed = n })
		case "workers", "samples", "min_samples":
			n, err := strconv.Atoi(raw.String())
			if err != nil || n < 0 {
				return bad("want a non-negative integer")
			}
			db.Core().UpdateConfig(func(cfg *sampler.Config) {
				switch k {
				case "workers":
					cfg.Workers = n
				case "samples":
					cfg.FixedSamples = n
				case "min_samples":
					cfg.MinSamples = n
				}
			})
		case "max_samples":
			n, err := strconv.Atoi(raw.String())
			if err != nil || n < 1 {
				return bad("want a positive integer")
			}
			db.Core().UpdateConfig(func(cfg *sampler.Config) { cfg.MaxSamples = n })
		case "epsilon", "delta":
			f, err := strconv.ParseFloat(raw.String(), 64)
			if err != nil || f <= 0 || f >= 1 {
				return bad("want a float in (0, 1)")
			}
			db.Core().UpdateConfig(func(cfg *sampler.Config) {
				if k == "epsilon" {
					cfg.Epsilon = f
				} else {
					cfg.Delta = f
				}
			})
		default:
			return fmt.Errorf("%w: unknown setting %q (have seed, workers, epsilon, delta, samples, max_samples, min_samples)", ErrBadRequest, k)
		}
	}
	return nil
}
