package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client speaks the pipd wire protocol. It is the transport behind the
// remote database/sql backend (pip://host:port DSNs), pipql -connect, and
// the clientserver example; it is safe for concurrent use (the underlying
// http.Client pools connections).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for a pipd server. addr is host:port or a
// full http:// base URL.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// post issues one JSON request; on a non-200 response the server's error
// body is decoded back into a typed engine error. The response body is
// returned open for the caller to consume.
func (c *Client) post(ctx context.Context, path string, reqBody any) (*http.Response, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(reqBody); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &buf)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer drainClose(resp.Body)
		var eb struct {
			Error *Error `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != nil {
			return nil, eb.Error.Err()
		}
		return nil, fmt.Errorf("server: %s returned HTTP %d", path, resp.StatusCode)
	}
	return resp, nil
}

// drainClose reads a response body to EOF before closing so the
// http.Transport can return the connection to its keep-alive pool —
// otherwise every round trip would pay a fresh TCP handshake.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, body)
	body.Close()
}

// postJSON issues one JSON request and decodes a single JSON response.
func (c *Client) postJSON(ctx context.Context, path string, reqBody, respBody any) error {
	resp, err := c.post(ctx, path, reqBody)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	return json.NewDecoder(resp.Body).Decode(respBody)
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: healthz returned HTTP %d", resp.StatusCode)
	}
	return nil
}

// Tables lists the server's shared catalog.
func (c *Client) Tables(ctx context.Context) ([]TableInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/tables", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: tables returned HTTP %d", resp.StatusCode)
	}
	var out []TableInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Session creates a server-side session with the given initial settings
// (same keys and bounds as SQL SET; see SessionRequest) and returns a
// handle for executing statements in it.
func (c *Client) Session(ctx context.Context, settings map[string]json.Number) (*ClientSession, error) {
	var resp SessionResponse
	if err := c.postJSON(ctx, "/v1/session", SessionRequest{Settings: settings}, &resp); err != nil {
		return nil, err
	}
	return &ClientSession{c: c, id: resp.ID}, nil
}

// ClientSession is a handle on one server-side session: statements
// executed through it share the session's settings (SET applies to this
// session only) and the server's shared catalog.
type ClientSession struct {
	c  *Client
	id string
}

// ID returns the server-assigned session identifier.
func (s *ClientSession) ID() string { return s.id }

// Close releases the server-side session.
func (s *ClientSession) Close(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, s.c.base+"/v1/session/"+s.id, nil)
	if err != nil {
		return err
	}
	resp, err := s.c.hc.Do(req)
	if err != nil {
		return err
	}
	drainClose(resp.Body)
	return nil
}

// bindWire converts Go arguments to wire values.
func bindWire(args []any) ([]Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]Value, len(args))
	for i, a := range args {
		v, err := BindArg(a)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Query executes a statement and streams its result rows. Cancelling ctx
// mid-iteration closes the HTTP stream, which cancels the server-side
// query down into the sampler.
func (s *ClientSession) Query(ctx context.Context, query string, args ...any) (*ClientRows, error) {
	wargs, err := bindWire(args)
	if err != nil {
		return nil, err
	}
	return s.c.stream(ctx, QueryRequest{Session: s.id, Query: query, Args: wargs})
}

// Exec executes a statement, discarding result rows; it returns the
// discarded row count (0 for DDL/DML).
func (s *ClientSession) Exec(ctx context.Context, query string, args ...any) (int64, error) {
	wargs, err := bindWire(args)
	if err != nil {
		return 0, err
	}
	var resp ExecResponse
	if err := s.c.postJSON(ctx, "/v1/exec", QueryRequest{Session: s.id, Query: query, Args: wargs}, &resp); err != nil {
		return 0, err
	}
	return resp.Rows, nil
}

// Prepare parses a statement server-side for repeated execution.
func (s *ClientSession) Prepare(ctx context.Context, query string) (*ClientStmt, error) {
	var resp PrepareResponse
	if err := s.c.postJSON(ctx, "/v1/prepare", PrepareRequest{Session: s.id, Query: query}, &resp); err != nil {
		return nil, err
	}
	return &ClientStmt{sess: s, id: resp.Stmt, numInput: resp.NumInput}, nil
}

// ClientStmt is a server-side prepared statement.
type ClientStmt struct {
	sess     *ClientSession
	id       int64
	numInput int
}

// NumInput returns the statement's ? placeholder count.
func (st *ClientStmt) NumInput() int { return st.numInput }

// Query executes the prepared statement with bound arguments, streaming
// the result rows.
func (st *ClientStmt) Query(ctx context.Context, args ...any) (*ClientRows, error) {
	wargs, err := bindWire(args)
	if err != nil {
		return nil, err
	}
	return st.sess.c.stream(ctx, QueryRequest{Session: st.sess.id, Stmt: st.id, Args: wargs})
}

// Exec executes the prepared statement, discarding result rows.
func (st *ClientStmt) Exec(ctx context.Context, args ...any) (int64, error) {
	wargs, err := bindWire(args)
	if err != nil {
		return 0, err
	}
	var resp ExecResponse
	if err := st.sess.c.postJSON(ctx, "/v1/exec", QueryRequest{Session: st.sess.id, Stmt: st.id, Args: wargs}, &resp); err != nil {
		return 0, err
	}
	return resp.Rows, nil
}

// Close releases the server-side statement.
func (st *ClientStmt) Close(ctx context.Context) error {
	var resp struct {
		OK bool `json:"ok"`
	}
	return st.sess.c.postJSON(ctx, "/v1/stmt/close", StmtCloseRequest{Session: st.sess.id, Stmt: st.id}, &resp)
}

// stream opens a /v1/query NDJSON stream and consumes its head chunk.
func (c *Client) stream(ctx context.Context, req QueryRequest) (*ClientRows, error) {
	resp, err := c.post(ctx, "/v1/query", req)
	if err != nil {
		return nil, err
	}
	rows := &ClientRows{ctx: ctx, body: resp.Body, rd: bufio.NewReader(resp.Body)}
	head, err := rows.readChunk()
	if err != nil {
		rows.Close()
		return nil, err
	}
	if head.K != "head" {
		rows.Close()
		return nil, fmt.Errorf("server: protocol error: expected head chunk, got %q", head.K)
	}
	rows.cols = head.Columns
	return rows, nil
}

// ClientRows streams a remote query's result rows, mirroring pip.Rows:
// Next advances, Row/Cond expose the current row, Err reports the terminal
// error, Close releases the stream (cancelling the server-side query if it
// is still running). Values arrive in wire form; symbolic cells and row
// conditions are rendered strings.
type ClientRows struct {
	ctx    context.Context
	body   io.ReadCloser
	rd     *bufio.Reader
	cols   []string
	row    []Value
	cond   string
	count  int64
	err    error
	done   bool
	closed bool
}

// Columns returns the result column names (empty for DDL/DML).
func (r *ClientRows) Columns() []string { return r.cols }

// readChunk reads one NDJSON line. Lines are unbounded (equation strings
// can be long), hence ReadBytes rather than a Scanner.
func (r *ClientRows) readChunk() (Chunk, error) {
	line, err := r.rd.ReadBytes('\n')
	if err != nil && (len(line) == 0 || err != io.EOF) {
		// Prefer the caller's cancellation over the transport's rendering
		// of the connection teardown it caused.
		if r.ctx != nil && r.ctx.Err() != nil {
			return Chunk{}, r.ctx.Err()
		}
		return Chunk{}, err
	}
	var ch Chunk
	if uerr := json.Unmarshal(line, &ch); uerr != nil {
		if err == io.EOF {
			// A partial trailing line is a severed stream (server died
			// mid-chunk), not a protocol bug: surface it as truncation.
			return Chunk{}, io.EOF
		}
		return Chunk{}, fmt.Errorf("server: malformed chunk: %w", uerr)
	}
	return ch, nil
}

// Next advances to the next row, reporting false at the end of the stream
// or on error (distinguish with Err).
func (r *ClientRows) Next() bool {
	if r.done || r.closed || r.err != nil {
		return false
	}
	ch, err := r.readChunk()
	if err != nil {
		r.err = err
		return false
	}
	switch ch.K {
	case "row":
		r.row, r.cond = ch.Row, ch.Cond
		r.count++
		return true
	case "done":
		r.done = true
		return false
	case "err":
		r.done = true
		r.err = ch.Error.Err()
		return false
	default:
		r.done = true
		r.err = fmt.Errorf("server: protocol error: unexpected chunk %q", ch.K)
		return false
	}
}

// Row returns the current row's wire values (valid until the next call to
// Next); nil when no row is positioned.
func (r *ClientRows) Row() []Value { return r.row }

// Cond returns the current row's rendered c-table condition, "" for
// deterministic rows.
func (r *ClientRows) Cond() string { return r.cond }

// RowCount returns the number of rows consumed so far.
func (r *ClientRows) RowCount() int64 { return r.count }

// Err returns the error that terminated iteration, if any; a cancelled
// context surfaces as ctx.Err(), typed engine failures as their sentinel
// (errors.Is(err, pip.ErrParse) etc.).
func (r *ClientRows) Err() error {
	if errors.Is(r.err, io.EOF) {
		// A stream that ends without a done chunk was severed mid-flight.
		return fmt.Errorf("server: result stream truncated")
	}
	return r.err
}

// Close releases the stream. After a fully consumed stream the body is
// drained so the connection returns to the keep-alive pool; closing
// before the done chunk instead tears down the HTTP request, which the
// server turns into context cancellation for the running query.
func (r *ClientRows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.done {
		drainClose(r.body)
		return nil
	}
	return r.body.Close()
}
