package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// metrics is the server's counter set, exported in Prometheus text format
// by /metrics. All counters are monotonic atomics except the gauges
// (in-flight queries, live sessions) sampled at render time.
type metrics struct {
	start time.Time

	requestsTotal   atomic.Int64 // every HTTP request served
	queriesTotal    atomic.Int64 // /v1/query + /v1/exec statements started
	queriesInflight atomic.Int64 // statements currently executing
	errorsTotal     atomic.Int64 // statements that ended in an error chunk/status
	cancelledTotal  atomic.Int64 // statements ended by client disconnect/cancel
	rowsTotal       atomic.Int64 // result rows streamed to clients
	sessionsTotal   atomic.Int64 // sessions ever created
	sessionsSwept   atomic.Int64 // sessions reclaimed by the idle sweep
	queryNanos      atomic.Int64 // cumulative statement wall time
}

// newMetrics starts the uptime clock.
func newMetrics() *metrics { return &metrics{start: time.Now()} }

// observeQuery records one finished statement.
func (m *metrics) observeQuery(d time.Duration, rows int64, err error, cancelled bool) {
	m.queriesInflight.Add(-1)
	m.queryNanos.Add(int64(d))
	m.rowsTotal.Add(rows)
	if cancelled {
		m.cancelledTotal.Add(1)
	} else if err != nil {
		m.errorsTotal.Add(1)
	}
}

// write renders the Prometheus text exposition. sessionsActive is sampled
// from the session manager at call time.
func (m *metrics) write(w io.Writer, sessionsActive int) {
	type metric struct {
		name, help, typ string
		value           float64
	}
	ms := []metric{
		{"pip_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds()},
		{"pip_requests_total", "HTTP requests served, all endpoints.", "counter", float64(m.requestsTotal.Load())},
		{"pip_queries_total", "SQL statements started via /v1/query and /v1/exec.", "counter", float64(m.queriesTotal.Load())},
		{"pip_queries_inflight", "SQL statements currently executing.", "gauge", float64(m.queriesInflight.Load())},
		{"pip_query_errors_total", "Statements that ended in an error.", "counter", float64(m.errorsTotal.Load())},
		{"pip_query_cancelled_total", "Statements ended by client cancellation or disconnect.", "counter", float64(m.cancelledTotal.Load())},
		{"pip_rows_streamed_total", "Result rows streamed to clients.", "counter", float64(m.rowsTotal.Load())},
		{"pip_sessions_active", "Live sessions.", "gauge", float64(sessionsActive)},
		{"pip_sessions_total", "Sessions ever created.", "counter", float64(m.sessionsTotal.Load())},
		{"pip_sessions_swept_total", "Sessions reclaimed by the idle sweep.", "counter", float64(m.sessionsSwept.Load())},
		{"pip_query_seconds_total", "Cumulative statement execution wall time.", "counter", time.Duration(m.queryNanos.Load()).Seconds()},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, mt := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
}
