// Server metrics: the counter and histogram families behind /metrics,
// rendered in the Prometheus text exposition format (version 0.0.4). The
// flat counter families of earlier releases are all preserved; the
// histogram families (latency, rows, samples per statement, labelled by
// endpoint) are built on obs.Histogram so the hot path stays a few atomic
// adds.

package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"pip/internal/obs"
	"pip/internal/repl"
	"pip/internal/wal"
)

// queryEndpoints are the label values of the per-endpoint histogram
// families. Both series render from startup so scrapes see a stable set of
// label sets regardless of traffic.
var queryEndpoints = []string{"exec", "query"}

// metrics is the server's counter set, exported in Prometheus text format
// by /metrics. All counters are monotonic atomics except the gauges
// (in-flight queries, live sessions) sampled at render time.
type metrics struct {
	start time.Time

	requestsTotal   atomic.Int64 // every HTTP request served
	queriesTotal    atomic.Int64 // /v1/query + /v1/exec statements started
	queriesInflight atomic.Int64 // statements currently executing
	errorsTotal     atomic.Int64 // statements that ended in an error chunk/status
	cancelledTotal  atomic.Int64 // statements ended by client disconnect/cancel
	rowsTotal       atomic.Int64 // result rows streamed to clients
	sessionsTotal   atomic.Int64 // sessions ever created
	sessionsSwept   atomic.Int64 // sessions reclaimed by the idle sweep
	queryNanos      atomic.Int64 // cumulative statement wall time

	// Per-endpoint histograms, keyed by queryEndpoints values.
	querySeconds map[string]*obs.Histogram // statement latency
	queryRows    map[string]*obs.Histogram // rows per statement
	querySamples map[string]*obs.Histogram // Monte Carlo samples per statement
}

// newMetrics starts the uptime clock and allocates one histogram series per
// endpoint.
func newMetrics() *metrics {
	m := &metrics{
		start:        time.Now(),
		querySeconds: map[string]*obs.Histogram{},
		queryRows:    map[string]*obs.Histogram{},
		querySamples: map[string]*obs.Histogram{},
	}
	for _, ep := range queryEndpoints {
		m.querySeconds[ep] = obs.NewHistogram(obs.ExpBuckets(1e-4, 4, 10)) // 100µs .. ~26s
		m.queryRows[ep] = obs.NewHistogram(obs.ExpBuckets(1, 4, 10))       // 1 .. ~260k rows
		m.querySamples[ep] = obs.NewHistogram(obs.ExpBuckets(64, 4, 10))   // one batch .. ~16M samples
	}
	return m
}

// queryTracker follows one statement from start to finish. finish is
// idempotent, so handlers can arm a deferred call as a safety net (keeping
// pip_queries_inflight exact even on a panic or early return) and still
// report the real row/sample counts from the normal exit path — the first
// call wins.
type queryTracker struct {
	m        *metrics
	endpoint string
	start    time.Time
	finished bool
}

// startQuery counts a statement as started and in flight on the given
// endpoint ("query" or "exec") and returns its tracker.
func (m *metrics) startQuery(endpoint string) *queryTracker {
	m.queriesTotal.Add(1)
	m.queriesInflight.Add(1)
	return &queryTracker{m: m, endpoint: endpoint, start: time.Now()}
}

// finish records the statement's outcome: wall time, streamed rows, Monte
// Carlo samples (negative = unknown, skips the samples histogram), and the
// error/cancellation disposition. Calls after the first are no-ops.
func (t *queryTracker) finish(rows, samples int64, err error, cancelled bool) {
	if t == nil || t.finished {
		return
	}
	t.finished = true
	d := time.Since(t.start)
	m := t.m
	m.queriesInflight.Add(-1)
	m.queryNanos.Add(int64(d))
	m.rowsTotal.Add(rows)
	if cancelled {
		m.cancelledTotal.Add(1)
	} else if err != nil {
		m.errorsTotal.Add(1)
	}
	m.querySeconds[t.endpoint].Observe(d.Seconds())
	m.queryRows[t.endpoint].Observe(float64(rows))
	if samples >= 0 {
		m.querySamples[t.endpoint].Observe(float64(samples))
	}
}

// write renders the Prometheus text exposition. sessionsActive is sampled
// from the session manager at call time.
func (m *metrics) write(w io.Writer, sessionsActive int) {
	type metric struct {
		name, help, typ string
		value           float64
	}
	ms := []metric{
		{"pip_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds()},
		{"pip_requests_total", "HTTP requests served, all endpoints.", "counter", float64(m.requestsTotal.Load())},
		{"pip_queries_total", "SQL statements started via /v1/query and /v1/exec.", "counter", float64(m.queriesTotal.Load())},
		{"pip_queries_inflight", "SQL statements currently executing.", "gauge", float64(m.queriesInflight.Load())},
		{"pip_query_errors_total", "Statements that ended in an error.", "counter", float64(m.errorsTotal.Load())},
		{"pip_query_cancelled_total", "Statements ended by client cancellation or disconnect.", "counter", float64(m.cancelledTotal.Load())},
		{"pip_rows_streamed_total", "Result rows streamed to clients.", "counter", float64(m.rowsTotal.Load())},
		{"pip_sessions_active", "Live sessions.", "gauge", float64(sessionsActive)},
		{"pip_sessions_total", "Sessions ever created.", "counter", float64(m.sessionsTotal.Load())},
		{"pip_sessions_swept_total", "Sessions reclaimed by the idle sweep.", "counter", float64(m.sessionsSwept.Load())},
		{"pip_query_seconds_total", "Cumulative statement execution wall time.", "counter", time.Duration(m.queryNanos.Load()).Seconds()},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, mt := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
	writeHistogramFamily(w, "pip_query_seconds", "Statement execution latency in seconds.", m.querySeconds)
	writeHistogramFamily(w, "pip_query_rows", "Result rows per statement.", m.queryRows)
	writeHistogramFamily(w, "pip_query_samples", "Monte Carlo samples drawn per statement.", m.querySamples)
}

// writeHistogramFamily renders one histogram family with an endpoint label
// per series, in the standard _bucket/_sum/_count shape with cumulative
// bucket counts and a closing le="+Inf" bucket.
func writeHistogramFamily(w io.Writer, name, help string, series map[string]*obs.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	eps := make([]string, 0, len(series))
	for ep := range series {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		snap := series[ep].Snapshot()
		for i, b := range snap.Bounds {
			fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=%q} %d\n", name, ep, formatBound(b), snap.Counts[i])
		}
		fmt.Fprintf(w, "%s_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, ep, snap.Count)
		fmt.Fprintf(w, "%s_sum{endpoint=%q} %g\n", name, ep, snap.Sum)
		fmt.Fprintf(w, "%s_count{endpoint=%q} %d\n", name, ep, snap.Count)
	}
}

// formatBound renders a bucket upper bound the way Prometheus clients
// expect ("0.0001", "64", not Go's %g exponent forms for large values).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// writeWALMetrics renders the write-ahead log's counter families from a
// wal.Stats snapshot: append volume, fsync latency, snapshot cadence, and
// what the boot-time recovery pass restored.
func writeWALMetrics(w io.Writer, st wal.Stats) {
	type metric struct {
		name, help, typ string
		value           float64
	}
	poisoned := 0.0
	if st.Poisoned != "" {
		poisoned = 1
	}
	ms := []metric{
		{"pip_wal_poisoned", "1 after an append/sync failure fail-stopped the log; mutations are refused until restart.", "gauge", poisoned},
		{"pip_wal_records_total", "Statements appended to the write-ahead log.", "counter", float64(st.Records)},
		{"pip_wal_bytes_total", "Bytes appended to the write-ahead log.", "counter", float64(st.Bytes)},
		{"pip_wal_fsyncs_total", "Write-ahead log fsync calls.", "counter", float64(st.Fsyncs)},
		{"pip_wal_snapshots_total", "Catalog snapshots taken.", "counter", float64(st.Snapshots)},
		{"pip_wal_last_seq", "Sequence number of the newest durable log record.", "gauge", float64(st.LastSeq)},
		{"pip_wal_since_snapshot", "Log records accumulated past the newest snapshot.", "gauge", float64(st.SinceSnapshot)},
		{"pip_wal_recovery_seconds", "Wall time of the boot-time recovery pass.", "gauge", st.Recovery.Duration.Seconds()},
		{"pip_wal_recovery_replayed_records", "Log records replayed during the boot-time recovery pass.", "gauge", float64(st.Recovery.Replayed)},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, mt := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
	writeHistogramSnapshot(w, "pip_wal_fsync_seconds", "Write-ahead log fsync latency in seconds.", st.FsyncSeconds)
}

// writeReplPrimaryMetrics renders the primary-side replication families
// from a repl.PrimaryStats snapshot: shipped volume, stream churn, and
// per-replica progress (acked sequence and lag in records, labelled by the
// replica id, which outlives disconnects so lag stays visible while a
// replica is down).
func writeReplPrimaryMetrics(w io.Writer, st repl.PrimaryStats) {
	type metric struct {
		name, help, typ string
		value           float64
	}
	ms := []metric{
		{"pip_repl_role_primary", "1 on a replication primary.", "gauge", 1},
		{"pip_repl_last_seq", "Newest durable log record available to replicas.", "gauge", float64(st.LastSeq)},
		{"pip_repl_connected_replicas", "Replicas with a live stream open.", "gauge", float64(st.ConnectedReplicas)},
		{"pip_repl_known_replicas", "Replicas the primary has ever heard from.", "gauge", float64(len(st.Replicas))},
		{"pip_repl_records_shipped_total", "Log records shipped to replicas across all streams.", "counter", float64(st.RecordsShipped)},
		{"pip_repl_bytes_shipped_total", "Record payload bytes shipped to replicas.", "counter", float64(st.BytesShipped)},
		{"pip_repl_snapshots_shipped_total", "Snapshot images streamed to bootstrapping replicas.", "counter", float64(st.SnapshotsShipped)},
		{"pip_repl_streams_total", "Replication streams ever opened.", "counter", float64(st.StreamsTotal)},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, mt := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
	if len(st.Replicas) > 0 {
		fmt.Fprintf(w, "# HELP pip_repl_replica_acked_seq Newest sequence number each replica reports applied.\n# TYPE pip_repl_replica_acked_seq gauge\n")
		for _, r := range st.Replicas {
			fmt.Fprintf(w, "pip_repl_replica_acked_seq{replica=%q} %g\n", r.ID, float64(r.AckedSeq))
		}
		fmt.Fprintf(w, "# HELP pip_repl_replica_lag_records Records each replica trails the primary by.\n# TYPE pip_repl_replica_lag_records gauge\n")
		for _, r := range st.Replicas {
			fmt.Fprintf(w, "pip_repl_replica_lag_records{replica=%q} %g\n", r.ID, float64(r.LagRecords))
		}
	}
}

// writeReplFollowerMetrics renders the replica-side replication families
// from a repl.FollowerStats snapshot: applied position against the
// primary's, apply volume, reconnect churn, and the fail-stop latch.
func writeReplFollowerMetrics(w io.Writer, st repl.FollowerStats) {
	type metric struct {
		name, help, typ string
		value           float64
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	ms := []metric{
		{"pip_repl_role_replica", "1 on a read-only replica.", "gauge", 1},
		{"pip_repl_applied_seq", "Newest log record this replica has applied.", "gauge", float64(st.AppliedSeq)},
		{"pip_repl_primary_seq", "Primary log position as last reported on the stream.", "gauge", float64(st.PrimarySeq)},
		{"pip_repl_lag_records", "Records this replica trails the primary by.", "gauge", float64(st.LagRecords)},
		{"pip_repl_records_applied_total", "Log records applied from the replication stream.", "counter", float64(st.RecordsApplied)},
		{"pip_repl_bytes_applied_total", "Record payload bytes applied from the replication stream.", "counter", float64(st.BytesApplied)},
		{"pip_repl_snapshot_loads_total", "Snapshot images loaded to bootstrap or catch up.", "counter", float64(st.SnapshotsLoaded)},
		{"pip_repl_reconnects_total", "Stream reconnect attempts after transient failures.", "counter", float64(st.Reconnects)},
		{"pip_repl_connected", "1 while a replication stream is open to the primary.", "gauge", b2f(st.Connected)},
		{"pip_repl_fail_stopped", "1 after an integrity failure latched and stopped replication.", "gauge", b2f(st.FailStopped)},
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, mt := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", mt.name, mt.help, mt.name, mt.typ, mt.name, mt.value)
	}
}

// writeHistogramSnapshot renders one label-free histogram in the standard
// _bucket/_sum/_count shape from an already-taken snapshot.
func writeHistogramSnapshot(w io.Writer, name, help string, snap obs.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for i, b := range snap.Bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), snap.Counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, snap.Sum)
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}
