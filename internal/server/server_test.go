package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pip"
)

// demoStatements is the paper's running example, used as the shared
// fixture of the remote-vs-local corpus.
var demoStatements = []string{
	"CREATE TABLE orders (cust, shipto, price)",
	"CREATE TABLE shipping (dest, duration)",
	"INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))",
	"INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))",
	"INSERT INTO orders VALUES ('Ann', 'NY', CREATE_VARIABLE('Uniform', 50, 150))",
	"INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))",
	"INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))",
}

// corpus is the seeded query set asserted bit-identical across the wire.
// It covers streaming projections, per-row conf/expectation/variance,
// joins, aggregates with and without GROUP BY, DISTINCT, ORDER BY, LIMIT,
// EXPLAIN, and ? placeholders.
var corpus = []struct {
	query string
	args  []any
}{
	{"SELECT cust, price FROM orders WHERE price > 95", nil},
	{"SELECT cust, expectation(price) e, conf() c FROM orders WHERE price > 90", nil},
	{"SELECT cust, variance(price) v FROM orders", nil},
	{"SELECT expected_sum(o.price) FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7", nil},
	{"SELECT shipto, expected_count() n FROM orders GROUP BY shipto", nil},
	{"SELECT expected_avg(price) FROM orders", nil},
	{"SELECT expected_max(price) FROM orders", nil},
	{"SELECT DISTINCT shipto FROM orders ORDER BY shipto", nil},
	{"SELECT cust FROM orders ORDER BY cust DESC LIMIT 2", nil},
	{"SELECT cust FROM orders WHERE price > ?", []any{float64(90)}},
	{"EXPLAIN SELECT o.cust FROM orders o, shipping s WHERE o.shipto = s.dest", nil},
}

// newTestServer boots a server over a fresh seeded database behind
// httptest, returning its host:port address.
func newTestServer(t testing.TB, seed uint64) (addr string, srv *Server, ts *httptest.Server) {
	t.Helper()
	db := pip.Open(pip.Options{Seed: seed})
	srv = New(Config{DB: db})
	ts = httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts.Listener.Addr().String(), srv, ts
}

// rowFingerprint renders a result stream (wire-encoded values + rendered
// conditions) into one comparable string.
func rowFingerprint(t *testing.T, cols []string, rows [][]Value, conds []string) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Cols  []string
		Rows  [][]Value
		Conds []string
	}{cols, rows, conds})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// localFingerprint runs one corpus query in-process and fingerprints it
// through the same wire encoding the server uses.
func localFingerprint(t *testing.T, db *pip.DB, query string, args []any) string {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), query, args...)
	if err != nil {
		t.Fatalf("local %q: %v", query, err)
	}
	defer rows.Close()
	var out [][]Value
	var conds []string
	for rows.Next() {
		vals := rows.Values()
		wire := make([]Value, len(vals))
		for i, v := range vals {
			wire[i] = EncodeValue(v)
		}
		out = append(out, wire)
		cond := ""
		if c := rows.Cond(); !c.IsTrue() {
			cond = c.String()
		}
		conds = append(conds, cond)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("local %q: %v", query, err)
	}
	return rowFingerprint(t, rows.Columns(), out, conds)
}

// remoteFingerprint runs one corpus query through a server session.
func remoteFingerprint(t *testing.T, sess *ClientSession, query string, args []any) string {
	t.Helper()
	rows, err := sess.Query(context.Background(), query, args...)
	if err != nil {
		t.Fatalf("remote %q: %v", query, err)
	}
	defer rows.Close()
	var out [][]Value
	var conds []string
	for rows.Next() {
		row := rows.Row()
		cp := make([]Value, len(row))
		copy(cp, row)
		out = append(out, cp)
		conds = append(conds, rows.Cond())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("remote %q: %v", query, err)
	}
	return rowFingerprint(t, rows.Columns(), out, conds)
}

// TestRemoteVsLocalBitIdentity is the determinism contract across the
// wire: the same seeded corpus, executed in-process and through a pipd
// server, produces bit-identical rows (floats compared through their
// exact round-trip wire encoding), identical conditions and columns.
func TestRemoteVsLocalBitIdentity(t *testing.T) {
	const seed = 42

	local := pip.Open(pip.Options{Seed: seed})
	for _, s := range demoStatements {
		if err := local.Exec(s); err != nil {
			t.Fatal(err)
		}
	}

	addr, _, _ := newTestServer(t, seed)
	client := NewClient(addr)
	sess, err := client.Session(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close(context.Background())
	for _, s := range demoStatements {
		if _, err := sess.Exec(context.Background(), s); err != nil {
			t.Fatal(err)
		}
	}

	for _, q := range corpus {
		want := localFingerprint(t, local, q.query, q.args)
		got := remoteFingerprint(t, sess, q.query, q.args)
		if got != want {
			t.Errorf("%q:\nlocal  %s\nremote %s", q.query, want, got)
		}
	}
}

// TestPreparedStatementOverWire exercises the prepare/bind/execute path:
// arity is reported, rebinding works, and results match the text path.
func TestPreparedStatementOverWire(t *testing.T) {
	addr, _, _ := newTestServer(t, 7)
	client := NewClient(addr)
	ctx := context.Background()
	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := sess.Exec(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sess.Prepare(ctx, "SELECT cust FROM orders WHERE price > ?")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumInput() != 1 {
		t.Fatalf("NumInput = %d, want 1", st.NumInput())
	}
	for _, threshold := range []float64{60, 90} {
		rows, err := st.Query(ctx, threshold)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if n != 3 {
			t.Errorf("threshold %v: %d rows, want 3 (symbolic prices condition every row)", threshold, n)
		}
	}
	// Wrong arity surfaces as a bind error.
	if _, err := st.Query(ctx); !errors.Is(err, pip.ErrBind) {
		t.Errorf("arity error = %v, want ErrBind", err)
	}
	if err := st.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query(ctx, 90.0); err == nil {
		t.Error("query on closed statement succeeded")
	}
}

// TestSessionSettingsIsolation proves SET is per-session: two sessions on
// one server diverge after one changes its seed, a third session inherits
// the server's base configuration untouched, and re-execution within a
// session is self-consistent.
func TestSessionSettingsIsolation(t *testing.T) {
	const seed = 42
	addr, _, _ := newTestServer(t, seed)
	client := NewClient(addr)
	ctx := context.Background()

	admin, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := admin.Exec(ctx, s); err != nil {
			t.Fatal(err)
		}
	}

	const q = "SELECT expected_sum(price) FROM orders WHERE price > 90"
	a, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := remoteFingerprint(t, a, q, nil)
	if got := remoteFingerprint(t, b, q, nil); got != base {
		t.Fatalf("equal-seed sessions disagree:\n%s\n%s", base, got)
	}
	// Session a reseeds itself; b and a fresh session are unaffected.
	if _, err := a.Exec(ctx, "SET seed = 7"); err != nil {
		t.Fatal(err)
	}
	reseeded := remoteFingerprint(t, a, q, nil)
	if reseeded == base {
		t.Fatal("SET seed = 7 did not change session a's results")
	}
	if got := remoteFingerprint(t, a, q, nil); got != reseeded {
		t.Fatal("session a is not self-consistent after SET")
	}
	if got := remoteFingerprint(t, b, q, nil); got != base {
		t.Fatal("SET in session a leaked into session b")
	}
	c, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := remoteFingerprint(t, c, q, nil); got != base {
		t.Fatal("SET in session a leaked into the server base configuration")
	}
	// Settings at session creation behave like an initial SET.
	d, err := client.Session(ctx, map[string]json.Number{"seed": "7"})
	if err != nil {
		t.Fatal(err)
	}
	if got := remoteFingerprint(t, d, q, nil); got != reseeded {
		t.Fatal("session created with seed=7 disagrees with SET seed = 7")
	}
}

// TestSeedZeroParity: seed=0 in session settings means "the engine's
// fixed default seed", exactly as pip.Options and in-process DSNs treat
// it — so seed=0 cannot produce different results local vs remote.
func TestSeedZeroParity(t *testing.T) {
	addr, _, _ := newTestServer(t, 0) // pip.Open{Seed: 0} = default seed
	client := NewClient(addr)
	ctx := context.Background()
	def, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := def.Exec(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	zero, err := client.Session(ctx, map[string]json.Number{"seed": "0"})
	if err != nil {
		t.Fatal(err)
	}
	const q = "SELECT expected_sum(price) FROM orders WHERE price > 90"
	if got, want := remoteFingerprint(t, zero, q, nil), remoteFingerprint(t, def, q, nil); got != want {
		t.Errorf("seed=0 session diverged from the default seed:\nwant %s\ngot  %s", want, got)
	}
}

// TestRemoteCancellation proves client-side context cancellation reaches
// the server's sampler: a query pinned to an enormous fixed sample count
// ends promptly with a context error instead of running to completion.
func TestRemoteCancellation(t *testing.T) {
	addr, srv, _ := newTestServer(t, 1)
	client := NewClient(addr)
	bg := context.Background()
	sess, err := client.Session(bg, map[string]json.Number{"samples": "200000000"})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := sess.Exec(bg, s); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		rows, err := sess.Query(ctx, "SELECT expected_sum(price) FROM orders WHERE price > 90")
		if err != nil {
			done <- err
			return
		}
		defer rows.Close()
		for rows.Next() {
		}
		done <- rows.Err()
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled query returned %v, want a context error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not reach the server-side sampler within 30s")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; the sampler should abort at its next round barrier", elapsed)
	}
	// The server records the cancellation once its handler unwinds.
	deadline := time.Now().Add(5 * time.Second)
	for srv.met.cancelledTotal.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.met.cancelledTotal.Load() == 0 {
		t.Error("server metrics did not count the cancelled query")
	}
}

// TestSessionLifecycle covers explicit close, unknown-session errors, and
// the idle sweep.
func TestSessionLifecycle(t *testing.T) {
	db := pip.Open(pip.Options{Seed: 1})
	srv := New(Config{DB: db, SessionIdle: 50 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := NewClient(ts.Listener.Addr().String())
	ctx := context.Background()

	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "CREATE TABLE t (x)"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "DROP TABLE t"); !errors.Is(err, ErrSessionUnknown) {
		t.Fatalf("closed session error = %v, want ErrSessionUnknown", err)
	}

	// An idle session is swept; the sweeper ticks at idle/4.
	sw, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := sw.Exec(ctx, "SELECT x FROM t"); errors.Is(err, ErrSessionUnknown) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never swept")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestTypedErrorsOverWire proves the wire preserves the typed error
// surface: sentinels match with errors.Is and parse errors carry their
// position through errors.As.
func TestTypedErrorsOverWire(t *testing.T) {
	addr, _, _ := newTestServer(t, 1)
	client := NewClient(addr)
	ctx := context.Background()
	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}

	_, err = sess.Query(ctx, "SELEC cust FROM orders")
	if !errors.Is(err, pip.ErrParse) {
		t.Fatalf("syntax error = %v, want ErrParse", err)
	}
	var pe *pip.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("syntax error %v does not carry a *ParseError", err)
	}
	if pe.Col != 1 || pe.SourceLine() == "" {
		t.Errorf("reconstructed position col=%d line=%q", pe.Col, pe.SourceLine())
	}

	// Multi-line statements keep their real line number across the wire.
	_, err = sess.Query(ctx, "SELECT cust\nFROM orders\nWHERE ???")
	var mpe *pip.ParseError
	if !errors.As(err, &mpe) {
		t.Fatalf("multi-line syntax error %v does not carry a *ParseError", err)
	}
	if mpe.Line != 3 || mpe.SourceLine() != "WHERE ???" {
		t.Errorf("multi-line position = line %d source %q, want line 3 %q", mpe.Line, mpe.SourceLine(), "WHERE ???")
	}

	if _, err := sess.Query(ctx, "SELECT x FROM nope"); !errors.Is(err, pip.ErrUnknownTable) {
		t.Errorf("unknown table error = %v, want ErrUnknownTable", err)
	}
	if _, err := sess.Exec(ctx, "CREATE TABLE t (x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(ctx, "SELECT y FROM t"); !errors.Is(err, pip.ErrUnknownColumn) {
		t.Errorf("unknown column error = %v, want ErrUnknownColumn", err)
	}
	if _, err := sess.Query(ctx, "SELECT x FROM t WHERE x > ?"); !errors.Is(err, pip.ErrBind) {
		t.Errorf("unbound placeholder error = %v, want ErrBind", err)
	}
}

// TestWireValueRoundTrip proves every float64 bit pattern the engine can
// produce survives the wire encoding exactly.
func TestWireValueRoundTrip(t *testing.T) {
	floats := []float64{
		0, math.Copysign(0, -1), 1.0 / 3.0, math.Pi, 1e-323, math.MaxFloat64,
		math.SmallestNonzeroFloat64, math.Inf(1), math.Inf(-1), math.NaN(),
		95.00000000000001, -123456789.987654321,
	}
	for _, f := range floats {
		v := EncodeValue(pip.Float(f))
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Value
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		n, err := back.Native()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := n.(float64)
		if !ok {
			t.Fatalf("%v decoded to %T", f, n)
		}
		if math.Float64bits(got) != math.Float64bits(f) && !(math.IsNaN(got) && math.IsNaN(f)) {
			t.Errorf("float %v (bits %x) round-tripped to %v (bits %x)",
				f, math.Float64bits(f), got, math.Float64bits(got))
		}
	}
}

// TestOperationalEndpoints smoke-tests /healthz, /metrics and /v1/tables.
func TestOperationalEndpoints(t *testing.T) {
	addr, _, ts := newTestServer(t, 1)
	client := NewClient(addr)
	ctx := context.Background()
	if err := client.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	sess, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "CREATE TABLE t (a, b)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, "INSERT INTO t VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	tables, err := client.Tables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "t" || tables[0].Rows != 1 || len(tables[0].Columns) != 2 {
		t.Errorf("tables = %+v", tables)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pip_queries_total", "pip_sessions_active", "pip_rows_streamed_total", "pip_uptime_seconds"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestConcurrentSessions hammers one server from many sessions at once —
// shared-catalog reads under per-session settings — and asserts every
// session sees the identical seeded answer (the determinism contract under
// concurrency). Run with -race in CI.
func TestConcurrentSessions(t *testing.T) {
	const seed = 11
	addr, _, _ := newTestServer(t, seed)
	client := NewClient(addr)
	ctx := context.Background()
	setup, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := setup.Exec(ctx, s); err != nil {
			t.Fatal(err)
		}
	}
	const q = "SELECT expected_sum(price) FROM orders WHERE price > 90"
	want := remoteFingerprint(t, setup, q, nil)

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			sess, err := client.Session(ctx, nil)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close(ctx)
			for j := 0; j < 5; j++ {
				rows, err := sess.Query(ctx, q)
				if err != nil {
					errs <- err
					return
				}
				var out [][]Value
				var conds []string
				for rows.Next() {
					row := rows.Row()
					cp := make([]Value, len(row))
					copy(cp, row)
					out = append(out, cp)
					conds = append(conds, rows.Cond())
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				rows.Close()
				b, _ := json.Marshal(struct {
					Cols  []string
					Rows  [][]Value
					Conds []string
				}{rows.Columns(), out, conds})
				if string(b) != want {
					errs <- fmt.Errorf("concurrent session diverged:\nwant %s\ngot  %s", want, b)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentDML: concurrent sessions inserting into, scanning and
// listing one shared table must be race-free and lose no rows — DML and
// snapshots serialize through the catalog lock (run with -race in CI).
func TestConcurrentDML(t *testing.T) {
	addr, _, _ := newTestServer(t, 5)
	client := NewClient(addr)
	ctx := context.Background()
	setup, err := client.Session(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(ctx, "CREATE TABLE log (worker, i)"); err != nil {
		t.Fatal(err)
	}

	const workers, rows = 4, 25
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			sess, err := client.Session(ctx, nil)
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close(ctx)
			for i := 0; i < rows; i++ {
				if _, err := sess.Exec(ctx, "INSERT INTO log VALUES (?, ?)", float64(w), float64(i)); err != nil {
					errs <- err
					return
				}
				// Interleave reads: scans must see a consistent prefix.
				if _, err := sess.Exec(ctx, "SELECT worker FROM log"); err != nil {
					errs <- err
					return
				}
				if _, err := client.Tables(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	n, err := setup.Exec(ctx, "SELECT i FROM log")
	if err != nil {
		t.Fatal(err)
	}
	if n != workers*rows {
		t.Fatalf("lost rows under concurrent DML: %d, want %d", n, workers*rows)
	}
}

// BenchmarkServerParallelQueries measures end-to-end wire throughput of
// concurrent clients: each parallel worker owns one session and runs the
// paper's join-expectation query over HTTP, fixed at 256 samples so the
// measurement tracks the service path, not adaptive stopping noise.
func BenchmarkServerParallelQueries(b *testing.B) {
	db := pip.Open(pip.Options{Seed: 1, FixedSamples: 256})
	srv := New(Config{DB: db})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	client := NewClient(ts.Listener.Addr().String())
	ctx := context.Background()
	setup, err := client.Session(ctx, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range demoStatements {
		if _, err := setup.Exec(ctx, s); err != nil {
			b.Fatal(err)
		}
	}
	const q = "SELECT expected_sum(o.price) FROM orders o, shipping s WHERE o.shipto = s.dest AND s.duration >= 7"
	var rowsStreamed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sess, err := client.Session(ctx, nil)
		if err != nil {
			b.Error(err)
			return
		}
		defer sess.Close(ctx)
		for pb.Next() {
			rows, err := sess.Query(ctx, q)
			if err != nil {
				b.Error(err)
				return
			}
			for rows.Next() {
				rowsStreamed.Add(1)
			}
			if err := rows.Err(); err != nil {
				b.Error(err)
				return
			}
			rows.Close()
		}
	})
	b.ReportMetric(float64(rowsStreamed.Load())/float64(b.N), "rows/query")
}
