package server

// DemoStatements is the paper's running example (§1.1: orders x
// shipping), shared by `pipd -demo` and `pipql -demo` so every surface
// preloads the identical dataset and the documented example outputs hold
// regardless of which binary loaded it.
var DemoStatements = []string{
	"CREATE TABLE orders (cust, shipto, price)",
	"CREATE TABLE shipping (dest, duration)",
	"INSERT INTO orders VALUES ('Joe', 'NY', CREATE_VARIABLE('Normal', 100, 10))",
	"INSERT INTO orders VALUES ('Bob', 'LA', CREATE_VARIABLE('Normal', 80, 5))",
	"INSERT INTO shipping VALUES ('NY', CREATE_VARIABLE('Normal', 5, 2))",
	"INSERT INTO shipping VALUES ('LA', CREATE_VARIABLE('Normal', 4, 1))",
}
