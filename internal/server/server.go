package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"pip"
	"pip/internal/repl"
	"pip/internal/wal"
)

// Config configures a Server.
type Config struct {
	// DB is the shared database all sessions view. Required.
	DB *pip.DB
	// Logger receives one structured record per HTTP request (method, path,
	// status, duration, bytes) plus server lifecycle events. Nil disables
	// request logging.
	Logger *slog.Logger
	// SlowQuery logs statements whose wall time exceeds this threshold at
	// Warn level with the query text attached. Zero or negative disables
	// slow-query logging. Requires Logger.
	SlowQuery time.Duration
	// SessionIdle expires sessions with no request for this long and none
	// in flight; the zero value takes DefaultSessionIdle, negative disables
	// expiry.
	SessionIdle time.Duration
	// WAL, when set, surfaces the write-ahead log's counters (records,
	// bytes, fsync latency, snapshots, recovery) on /metrics. Opening the
	// store and attaching it to the database is the caller's job (cmd/pipd
	// wires it from -data-dir); the server only reports on it.
	WAL *wal.Store
	// Repl, when set, marks this server a replication primary: the
	// replication endpoints (GET /v1/repl/stream, POST /v1/repl/ack) are
	// mounted on this handler too — normally they live on pipd's dedicated
	// -replicate-addr listener — and the primary-side pip_repl_* families
	// render on /metrics.
	Repl *repl.Primary
	// Follower, when set, marks this server a read-only replica: the
	// replica-side pip_repl_* families (applied position, lag, reconnects,
	// fail-stop state) render on /metrics. Marking the database read-only
	// and running the follower is the caller's job (cmd/pipd -follow).
	Follower *repl.Follower
}

// DefaultSessionIdle is the idle session expiry applied when
// Config.SessionIdle is zero.
const DefaultSessionIdle = 30 * time.Minute

// Server is the HTTP/JSON query service: it multiplexes one shared pip.DB
// across concurrent remote sessions, streaming query results chunk by
// chunk and propagating client disconnects into the sampler as context
// cancellation. Create with New, mount via Handler (or ServeHTTP), stop
// with Close.
type Server struct {
	db        *pip.DB
	logger    *slog.Logger
	slowQuery time.Duration
	sessions  *sessionManager
	met       *metrics
	wal       *wal.Store
	repl      *repl.Primary
	follower  *repl.Follower
	handler   http.Handler
	stop      chan struct{}
	stopOnce  sync.Once
}

// New creates a server over cfg.DB and starts its idle-session sweeper.
func New(cfg Config) *Server {
	if cfg.DB == nil {
		panic("server: Config.DB is required")
	}
	idle := cfg.SessionIdle
	if idle == 0 {
		idle = DefaultSessionIdle
	}
	s := &Server{
		db:        cfg.DB,
		logger:    cfg.Logger,
		slowQuery: cfg.SlowQuery,
		sessions:  newSessionManager(cfg.DB, idle),
		met:       newMetrics(),
		wal:       cfg.WAL,
		repl:      cfg.Repl,
		follower:  cfg.Follower,
		stop:      make(chan struct{}),
	}
	mux := http.NewServeMux()
	//pipvet:allow walcommit session-create settings mutate session-local config only, never durable catalog state
	mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	mux.HandleFunc("POST /v1/stmt/close", s.handleStmtClose)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/exec", s.handleExec)
	mux.HandleFunc("GET /v1/tables", s.handleTables)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.repl != nil {
		mux.HandleFunc("GET "+repl.StreamPath, s.repl.ServeStream)
		mux.HandleFunc("POST "+repl.AckPath, s.repl.ServeAck)
	}
	s.handler = s.logged(mux)
	go s.sweeper()
	return s
}

// Handler returns the server's HTTP handler (request logging and metrics
// included), for mounting under an http.Server of the caller's choosing.
func (s *Server) Handler() http.Handler { return s.handler }

// ServeHTTP implements http.Handler by delegating to Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// SessionCount returns the number of live sessions (also surfaced by
// /healthz and the pip_sessions_active metric).
func (s *Server) SessionCount() int { return s.sessions.count() }

// Close stops the idle-session sweeper; it is idempotent. In-flight
// requests are governed by the http.Server hosting the handler (use its
// Shutdown for graceful drain).
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// sweeper periodically expires idle sessions until Close.
func (s *Server) sweeper() {
	if s.sessions.idle <= 0 {
		return
	}
	t := time.NewTicker(s.sessions.idle / 4)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			if n := s.sessions.sweep(now); n > 0 {
				s.met.sessionsSwept.Add(int64(n))
				if s.logger != nil {
					s.logger.Info("swept idle sessions", "sessions", n)
				}
			}
		}
	}
}

// slowLog emits a Warn record when a statement exceeded the slow-query
// threshold. query is the statement text when known (prepared-statement
// requests carry only the id).
func (s *Server) slowLog(endpoint, query string, d time.Duration, rows int64) {
	if s.logger == nil || s.slowQuery <= 0 || d < s.slowQuery {
		return
	}
	s.logger.Warn("slow query",
		"endpoint", endpoint, "query", query,
		"duration", d, "threshold", s.slowQuery, "rows", rows)
}

// ---------------------------------------------------------------------------
// Middleware

// statusWriter captures the response status and byte count for the request
// log while passing Flush through to the underlying writer (streaming
// responses depend on it).
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// WriteHeader records the status.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write counts payload bytes.
func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer's Flusher.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logged is the outermost middleware: request counting + structured access
// logging.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.met.requestsTotal.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if s.logger != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			s.logger.Info("request",
				"method", r.Method, "path", r.URL.Path, "status", status,
				"bytes", sw.bytes, "duration", time.Since(start),
				"remote", r.RemoteAddr)
		}
	})
}

// ---------------------------------------------------------------------------
// JSON plumbing

// writeJSON emits one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus maps a wire error code to its HTTP status.
func errStatus(code string) int {
	switch code {
	case CodeParse, CodeUnknownTable, CodeUnknownColumn, CodeBind:
		return http.StatusBadRequest
	case CodeSession:
		return http.StatusNotFound
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeCancelled:
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// statusClientClosedRequest reports a query ended by client disconnect
// (nginx's non-standard but widely understood 499).
const statusClientClosedRequest = 499

// writeError emits an engine error as a JSON error body.
func writeError(w http.ResponseWriter, err error) {
	we := EncodeError(err)
	writeJSON(w, errStatus(we.Code), struct {
		Error *Error `json:"error"`
	}{we})
}

// decodeBody parses a JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: malformed request body: %w", ErrBadRequest, err)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Session endpoints

// handleSessionCreate implements POST /v1/session. Its UpdateConfig calls
// (via applySettings) touch only the session handle's private sampler
// config — sessions are ephemeral and never replayed, so the WAL rightly
// never sees them.
//
//pipvet:allow walcommit session settings are session-local config, not durable catalog state
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if r.ContentLength != 0 {
		if err := decodeBody(r, &req); err != nil {
			writeError(w, err)
			return
		}
	}
	sess, err := s.sessions.create(req.Settings)
	if err != nil {
		writeError(w, err)
		return
	}
	s.met.sessionsTotal.Add(1)
	writeJSON(w, http.StatusOK, SessionResponse{ID: sess.id})
}

// handleSessionDelete implements DELETE /v1/session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.sessions.close(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// handlePrepare implements POST /v1/prepare.
func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sess, release, err := s.sessions.acquire(req.Session)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	id, st, err := sess.prepare(req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PrepareResponse{Stmt: id, NumInput: st.NumInput()})
}

// handleStmtClose implements POST /v1/stmt/close.
func (s *Server) handleStmtClose(w http.ResponseWriter, r *http.Request) {
	var req StmtCloseRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	sess, release, err := s.sessions.acquire(req.Session)
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	sess.closeStmt(req.Stmt)
	writeJSON(w, http.StatusOK, struct {
		OK bool `json:"ok"`
	}{true})
}

// ---------------------------------------------------------------------------
// Statement endpoints

// openRows resolves a QueryRequest to a streaming result: session lookup,
// argument decoding, and prepared-vs-text dispatch, all under the request
// context so a disconnected client aborts the sampler.
func (s *Server) openRows(ctx context.Context, req *QueryRequest) (*pip.Rows, func(), error) {
	sess, release, err := s.sessions.acquire(req.Session)
	if err != nil {
		return nil, nil, err
	}
	args, err := decodeArgs(req.Args)
	if err != nil {
		release()
		return nil, nil, err
	}
	var rows *pip.Rows
	if req.Stmt != 0 {
		if req.Query != "" {
			release()
			return nil, nil, fmt.Errorf("server: request sets both query text and a prepared statement id")
		}
		st, err := sess.stmt(req.Stmt)
		if err != nil {
			release()
			return nil, nil, err
		}
		rows, err = st.QueryContext(ctx, args...)
		if err != nil {
			release()
			return nil, nil, err
		}
	} else {
		rows, err = sess.db.QueryContext(ctx, req.Query, args...)
		if err != nil {
			release()
			return nil, nil, err
		}
	}
	return rows, release, nil
}

// handleQuery implements POST /v1/query: an NDJSON stream of head, row...,
// done|err chunks. Errors before the first chunk (unknown session, parse
// failures) are plain JSON error responses with a non-200 status; once
// streaming begins, failures arrive as a terminal err chunk.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	qt := s.met.startQuery("query")
	// Safety net: finish is idempotent, so this keeps pip_queries_inflight
	// exact even if the handler unwinds early; the explicit finish below
	// carries the real counts.
	defer qt.finish(0, -1, nil, false)
	start := time.Now()
	rows, release, err := s.openRows(ctx, &req)
	if err != nil {
		qt.finish(0, -1, err, isCancel(err))
		writeError(w, err)
		return
	}
	defer release()
	defer rows.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	_ = enc.Encode(Chunk{K: "head", Columns: rows.Columns()})
	flush()

	var n int64
	for rows.Next() {
		vals := rows.Values()
		wire := make([]Value, len(vals))
		for i, v := range vals {
			wire[i] = EncodeValue(v)
		}
		chunk := Chunk{K: "row", Row: wire}
		if c := rows.Cond(); !c.IsTrue() {
			chunk.Cond = c.String()
		}
		if enc.Encode(chunk) != nil {
			// The client went away; the request context is (or will be)
			// cancelled, which aborts the sampler. Stop streaming.
			break
		}
		flush()
		n++
	}
	err = rows.Err()
	if err != nil {
		_ = enc.Encode(Chunk{K: "err", Error: EncodeError(err)})
	} else {
		_ = enc.Encode(Chunk{K: "done", Rows: n})
	}
	flush()
	qt.finish(n, s.lastQuerySamples(), err, isCancel(err) || ctx.Err() != nil)
	s.slowLog("query", req.Query, time.Since(start), n)
}

// handleExec implements POST /v1/exec: execute a statement, discard any
// result rows, report how many there were.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx := r.Context()
	qt := s.met.startQuery("exec")
	defer qt.finish(0, -1, nil, false) // safety net; see handleQuery
	start := time.Now()
	rows, release, err := s.openRows(ctx, &req)
	if err != nil {
		qt.finish(0, -1, err, isCancel(err))
		writeError(w, err)
		return
	}
	defer release()
	var n int64
	for rows.Next() {
		n++
	}
	err = rows.Err()
	rows.Close()
	qt.finish(0, s.lastQuerySamples(), err, isCancel(err) || ctx.Err() != nil)
	s.slowLog("exec", req.Query, time.Since(start), n)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExecResponse{OK: true, Rows: n})
}

// lastQuerySamples reads the sample count from the engine's most recent
// query trace. Under concurrent statements another query may have displaced
// the trace between execution and this read, so the pip_query_samples
// histogram is best-effort attribution; engine-wide sample totals (SHOW
// STATS) are exact. Returns -1 when no trace exists.
func (s *Server) lastQuerySamples() int64 {
	q := s.db.Core().LastQuery()
	if q == nil {
		return -1
	}
	return q.Sampler.Snapshot().Samples
}

// isCancel reports whether err is a context cancellation/timeout.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// handleTables implements GET /v1/tables: the shared catalog listing.
func (s *Server) handleTables(w http.ResponseWriter, _ *http.Request) {
	out := []TableInfo{}
	for _, n := range s.db.Core().TableNames() {
		tb, err := s.db.Table(n)
		if err != nil {
			continue // dropped concurrently; the listing is best-effort
		}
		// Row count via a locked snapshot: tb.Len() would read the live
		// slice header unsynchronized against concurrent inserts.
		out = append(out, TableInfo{Name: n, Columns: tb.Schema.Names(), Rows: len(s.db.Core().Snapshot(tb))})
	}
	writeJSON(w, http.StatusOK, out)
}

// ---------------------------------------------------------------------------
// Operational endpoints

// handleHealthz implements GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Sessions      int     `json:"sessions"`
	}{"ok", time.Since(s.met.start).Seconds(), s.sessions.count()})
}

// handleMetrics implements GET /metrics (Prometheus text format).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.sessions.count())
	if s.wal != nil {
		writeWALMetrics(w, s.wal.Stats())
	}
	if s.repl != nil {
		writeReplPrimaryMetrics(w, s.repl.Stats())
	}
	if s.follower != nil {
		writeReplFollowerMetrics(w, s.follower.Stats())
	}
}
