// Package server is PIP's network front end: an HTTP/JSON query service
// (pipd) that multiplexes one shared probabilistic database across
// concurrent remote sessions, plus the client used by the remote
// database/sql backend, pipql -connect and the examples.
//
// # Wire protocol
//
// The protocol is plain HTTP + JSON so any language can speak it with a
// stock HTTP client. Endpoints (all under /v1 except the operational two):
//
//	POST   /v1/session        create a session; body {"settings": {...}}
//	DELETE /v1/session/{id}   close a session
//	POST   /v1/prepare        prepare a statement in a session
//	POST   /v1/query          execute (text or prepared), stream result rows
//	POST   /v1/exec           execute, discard rows, report the row count
//	POST   /v1/stmt/close     release a prepared statement
//	GET    /healthz           liveness + uptime
//	GET    /metrics           Prometheus text-format counters
//
// A query response is newline-delimited JSON (NDJSON) over a chunked HTTP
// body: one head chunk naming the result columns, one chunk per row, and a
// terminal done (with the row count) or err chunk. Rows stream as the
// engine produces them, so a remote client consumes a large result with
// the same incremental cost as a local Rows loop, and closing the request
// body cancels the server-side query through its context.
//
// # Determinism across the wire
//
// Equal seeds give bit-identical results whether a query runs in-process
// or through a server: floats travel as shortest round-trip decimal
// strings (strconv 'g'/-1, lossless for every float64 including ±Inf and
// NaN), ints as int64, and the engine below the wire is the same. What
// does NOT cross the wire is symbolic state: random-variable equations and
// row conditions arrive as their rendered strings, sufficient for display
// and for the paper's expectation surface (which returns numbers), but not
// re-queryable — use the in-process API for programmatic symbolic work.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"pip"
	"pip/internal/ctable"
	"pip/internal/sql"
)

// Value is the wire form of one c-table cell. T tags the kind; exactly one
// payload field is meaningful:
//
//	"null"  SQL NULL (no payload)
//	"f"     float64 in F, as a shortest round-trip decimal string
//	"i"     int64 in I
//	"s"     string in S
//	"b"     bool in B
//	"e"     symbolic equation in S, rendered (e.g. "(x1 + 5)")
//
// Floats are strings, not JSON numbers, so ±Inf and NaN survive and every
// bit pattern round-trips exactly — the wire cannot perturb determinism.
type Value struct {
	T string `json:"t"`
	F string `json:"f,omitempty"`
	I int64  `json:"i,omitempty"`
	S string `json:"s,omitempty"`
	B bool   `json:"b,omitempty"`
}

// EncodeValue converts an engine cell to its wire form.
func EncodeValue(v pip.Value) Value {
	switch v.Kind {
	case ctable.KindFloat:
		return Value{T: "f", F: strconv.FormatFloat(v.F, 'g', -1, 64)}
	case ctable.KindInt:
		return Value{T: "i", I: v.I}
	case ctable.KindString:
		return Value{T: "s", S: v.S}
	case ctable.KindBool:
		return Value{T: "b", B: v.B}
	case ctable.KindExpr:
		return Value{T: "e", S: v.E.String()}
	default:
		return Value{T: "null"}
	}
}

// Native unwraps a wire value into its natural Go representation: float64,
// int64, string, bool, nil — or the equation string for symbolic cells,
// mirroring how the local database/sql backend surfaces them.
func (v Value) Native() (any, error) {
	switch v.T {
	case "f":
		f, err := strconv.ParseFloat(v.F, 64)
		if err != nil {
			return nil, fmt.Errorf("server: malformed wire float %q", v.F)
		}
		return f, nil
	case "i":
		return v.I, nil
	case "s":
		return v.S, nil
	case "b":
		return v.B, nil
	case "e":
		return v.S, nil
	case "null", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("server: unknown wire value kind %q", v.T)
	}
}

// String renders the value exactly as the engine's own display formatting
// (ctable.Value.String), so pipql output is identical local and remote.
func (v Value) String() string {
	switch v.T {
	case "f":
		f, err := strconv.ParseFloat(v.F, 64)
		if err != nil {
			return v.F
		}
		return ctable.Float(f).String()
	case "i":
		return strconv.FormatInt(v.I, 10)
	case "s", "e":
		return v.S
	case "b":
		return strconv.FormatBool(v.B)
	default:
		return "NULL"
	}
}

// BindArg converts a Go argument (the remote driver's value set: int64,
// float64, bool, string, []byte, nil) to its wire form for transmission.
func BindArg(a any) (Value, error) {
	v, err := pip.BindValue(a)
	if err != nil {
		return Value{}, err
	}
	return EncodeValue(v), nil
}

// decodeArgs converts wire arguments back to engine bind values.
func decodeArgs(args []Value) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		n, err := a.Native()
		if err != nil {
			return nil, err
		}
		if a.T == "e" {
			return nil, fmt.Errorf("server: symbolic arguments cannot cross the wire (argument %d)", i+1)
		}
		out[i] = n
	}
	return out, nil
}

// SessionRequest creates a session. Settings apply before the session
// serves its first statement, with the same names and validation as SQL
// SET (seed, workers, epsilon, delta, samples, max_samples, min_samples);
// values arrive as JSON numbers and seed is parsed as a full-precision
// uint64.
type SessionRequest struct {
	Settings map[string]json.Number `json:"settings,omitempty"`
}

// SessionResponse returns the new session's identifier, which every
// statement-level request echoes back.
type SessionResponse struct {
	ID string `json:"id"`
}

// PrepareRequest prepares one statement inside a session.
type PrepareRequest struct {
	Session string `json:"session"`
	Query   string `json:"query"`
}

// PrepareResponse identifies the server-side prepared statement and its
// placeholder arity.
type PrepareResponse struct {
	Stmt     int64 `json:"stmt"`
	NumInput int   `json:"num_input"`
}

// StmtCloseRequest releases a prepared statement.
type StmtCloseRequest struct {
	Session string `json:"session"`
	Stmt    int64  `json:"stmt"`
}

// QueryRequest executes a statement — either Query text or a prepared
// Stmt id (exactly one must be set) — with bound placeholder arguments.
// The same body drives /v1/query (streaming rows) and /v1/exec (rows
// discarded).
type QueryRequest struct {
	Session string  `json:"session"`
	Query   string  `json:"query,omitempty"`
	Stmt    int64   `json:"stmt,omitempty"`
	Args    []Value `json:"args,omitempty"`
}

// ExecResponse reports a completed /v1/exec statement.
type ExecResponse struct {
	OK   bool  `json:"ok"`
	Rows int64 `json:"rows"`
}

// TableInfo describes one catalog table in a GET /v1/tables listing. The
// catalog is shared by every session, so the listing takes no session id.
type TableInfo struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    int      `json:"rows"`
}

// Chunk is one NDJSON line of a streaming /v1/query response. K selects
// the variant:
//
//	"head"  Columns carries the result column names (empty for DDL/DML)
//	"row"   Row carries one result row's cells, Cond its c-table condition
//	        rendered as a string ("" for deterministic rows)
//	"done"  Rows carries the total row count; the stream is complete
//	"err"   Error carries the failure; no further chunks follow
//
// A well-formed stream is head, zero or more rows, then exactly one done
// or err.
type Chunk struct {
	K       string   `json:"k"`
	Columns []string `json:"columns,omitempty"`
	Row     []Value  `json:"row,omitempty"`
	Cond    string   `json:"cond,omitempty"`
	Rows    int64    `json:"rows,omitempty"`
	Error   *Error   `json:"error,omitempty"`
}

// Error codes carried by wire errors, so clients can reconstruct the typed
// error surface (pip.ErrParse and friends) without string matching.
const (
	CodeParse         = "parse"
	CodeUnknownTable  = "unknown_table"
	CodeUnknownColumn = "unknown_column"
	CodeBind          = "bind"
	CodeCancelled     = "cancelled"
	CodeSession       = "session"
	CodeBadRequest    = "bad_request"
	CodeReadOnly      = "read_only"
	CodeInternal      = "internal"
)

// ErrBadRequest is wrapped by client-input failures that carry no more
// specific code (malformed request bodies, invalid session settings), so
// they surface as HTTP 400 rather than a server fault.
var ErrBadRequest = errors.New("server: bad request")

// Error is the wire form of a failure. Parse errors carry their position
// and source line so remote clients render the same caret diagnostics as
// local ones.
type Error struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	Line       int    `json:"line,omitempty"`
	Col        int    `json:"col,omitempty"`
	SourceLine string `json:"source_line,omitempty"`
}

// ErrSessionUnknown is wrapped by failures naming a session the server
// does not know (never created, closed, or expired by the idle sweep).
var ErrSessionUnknown = errors.New("server: unknown session")

// EncodeError maps an engine error to its wire form.
func EncodeError(err error) *Error {
	we := &Error{Code: CodeInternal, Message: err.Error()}
	var pe *sql.ParseError
	switch {
	case errors.As(err, &pe):
		we.Code = CodeParse
		// The bare message, not err.Error(): the client rebuilds a
		// ParseError from Line/Col/Message, and ParseError.Error() adds
		// the position prefix itself.
		we.Message = pe.Msg
		we.Line, we.Col = pe.Line, pe.Col
		we.SourceLine = pe.SourceLine()
	case errors.Is(err, pip.ErrUnknownTable):
		we.Code = CodeUnknownTable
	case errors.Is(err, pip.ErrUnknownColumn):
		we.Code = CodeUnknownColumn
	case errors.Is(err, pip.ErrBind):
		we.Code = CodeBind
	case errors.Is(err, pip.ErrReadOnly):
		we.Code = CodeReadOnly
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		we.Code = CodeCancelled
	case errors.Is(err, ErrSessionUnknown):
		we.Code = CodeSession
	case errors.Is(err, ErrBadRequest):
		we.Code = CodeBadRequest
	}
	return we
}

// Err converts a wire error back to a typed engine error: the returned
// error matches the corresponding sentinel with errors.Is, and parse
// errors are genuine *sql.ParseError values (errors.As works), rebuilt
// from the transmitted position and source line.
func (e *Error) Err() error {
	if e == nil {
		return nil
	}
	switch e.Code {
	case CodeParse:
		if e.Line > 0 {
			// Rebuild a positioned ParseError from the transmitted
			// position. Src is padded with newlines so Line/Col and
			// SourceLine (hence caret rendering) behave exactly as they do
			// locally, including for multi-line statements.
			src := strings.Repeat("\n", e.Line-1) + e.SourceLine
			return &sql.ParseError{Src: src, Line: e.Line, Col: e.Col, Msg: e.Message}
		}
		return fmt.Errorf("%w: %s", pip.ErrParse, e.Message)
	case CodeUnknownTable:
		return remoteErr{sentinel: pip.ErrUnknownTable, msg: e.Message}
	case CodeUnknownColumn:
		return remoteErr{sentinel: pip.ErrUnknownColumn, msg: e.Message}
	case CodeBind:
		return remoteErr{sentinel: pip.ErrBind, msg: e.Message}
	case CodeReadOnly:
		return remoteErr{sentinel: pip.ErrReadOnly, msg: e.Message}
	case CodeCancelled:
		return remoteErr{sentinel: context.Canceled, msg: e.Message}
	case CodeSession:
		return remoteErr{sentinel: ErrSessionUnknown, msg: e.Message}
	case CodeBadRequest:
		return remoteErr{sentinel: ErrBadRequest, msg: e.Message}
	default:
		return errors.New(e.Message)
	}
}

// remoteErr carries a server-side message while matching the local typed
// sentinel, without double-prefixing the message (the server already
// rendered the full chain).
type remoteErr struct {
	sentinel error
	msg      string
}

// Error returns the server-rendered message.
func (e remoteErr) Error() string { return e.msg }

// Unwrap ties the error to its sentinel for errors.Is.
func (e remoteErr) Unwrap() error { return e.sentinel }
