package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"pip/internal/iceberg"
	"pip/internal/tpch"
)

// Options sizes the experiment suite. Defaults reproduce the paper's shapes
// at laptop scale; raise the counts to stress absolute numbers.
type Options struct {
	Scale      tpch.Scale
	Seed       uint64
	Samples    int // PIP sample budget per expectation (paper: 1000)
	Trials     int // trials for RMS experiments (paper: 30)
	Fig7Parts  int // parts for the RMS experiments (paper: 5000)
	Fig8Ships  int // ships for the iceberg experiment (paper: 100)
	Fig8Bergs  int // iceberg sightings
	Fig8Worlds int // Sample-First world count for Fig. 8 (paper: 10000)
}

// DefaultOptions returns the harness defaults.
func DefaultOptions() Options {
	return Options{
		Scale:      tpch.DefaultScale(),
		Seed:       0xBEEF,
		Samples:    1000,
		Trials:     30,
		Fig7Parts:  200,
		Fig8Ships:  100,
		Fig8Bergs:  2000,
		Fig8Worlds: 10000,
	}
}

// QuickOptions returns a fast configuration for tests and smoke runs.
func QuickOptions() Options {
	return Options{
		Scale:      tpch.SmallScale(),
		Seed:       0xBEEF,
		Samples:    200,
		Trials:     5,
		Fig7Parts:  20,
		Fig8Ships:  10,
		Fig8Bergs:  200,
		Fig8Worlds: 1000,
	}
}

// ---------------------------------------------------------------------------
// Fig. 5: time to complete a 1000-sample query across selectivities, with
// Sample-First's world count scaled by 1/selectivity to match accuracy.

// Fig5Row is one selectivity point.
type Fig5Row struct {
	Selectivity float64
	PIPTime     time.Duration
	PIPSamples  int
	SFTime      time.Duration
	SFWorlds    int
}

// Fig5 runs the sweep.
func Fig5(opt Options) ([]Fig5Row, error) {
	data := tpch.Generate(opt.Scale, opt.Seed)
	sels := []float64{0.25, 0.05, 0.01, 0.005}
	rows := make([]Fig5Row, 0, len(sels))
	for _, sel := range sels {
		pipRes, err := Q4PIP(data, sel, opt.Samples, opt.Seed)
		if err != nil {
			return nil, err
		}
		sfWorlds := int(float64(opt.Samples) / sel)
		sfRes, err := Q4SF(data, sel, sfWorlds, opt.Seed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Selectivity: sel,
			PIPTime:     pipRes.Total(), PIPSamples: opt.Samples,
			SFTime: sfRes.Total(), SFWorlds: sfWorlds,
		})
	}
	return rows, nil
}

// WriteFig5 renders the sweep like the paper's figure (a table of series).
func WriteFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig. 5 — time to complete a 1000-sample query vs selectivity")
	fmt.Fprintln(w, "(Sample-First worlds scaled by 1/selectivity to match PIP accuracy)")
	fmt.Fprintf(w, "%12s %14s %18s %10s\n", "selectivity", "PIP", "Sample-First", "SF/PIP")
	for _, r := range rows {
		ratio := float64(r.SFTime) / float64(r.PIPTime)
		fmt.Fprintf(w, "%12.3f %14s %18s %9.1fx\n", r.Selectivity, r.PIPTime.Round(time.Millisecond),
			r.SFTime.Round(time.Millisecond), ratio)
	}
}

// ---------------------------------------------------------------------------
// Fig. 6: Q1–Q4 evaluation times; PIP split into query and sample phases;
// Sample-First world counts matched to PIP accuracy (Q3, Q4 selective).

// Fig6Row is one query's timings.
type Fig6Row struct {
	Query             string
	PIPQuery          time.Duration
	PIPSample         time.Duration
	SFTime            time.Duration
	SFWorlds          int
	PIPValue, SFValue float64
}

// Fig6 runs the four queries on both engines.
func Fig6(opt Options) ([]Fig6Row, error) {
	data := tpch.Generate(opt.Scale, opt.Seed)
	var rows []Fig6Row

	// Q1, Q2: no selection — Sample-First runs at the same world count.
	p1, err := Q1PIP(data, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	s1, err := Q1SF(data, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig6Row(p1, s1))

	p2, err := Q2PIP(data, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	s2, err := Q2SF(data, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig6Row(p2, s2))

	// Q3: ~10% selectivity -> Sample-First needs 10x the worlds.
	p3, err := Q3PIP(data, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	s3, err := Q3SF(data, opt.Samples*10, opt.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig6Row(p3, s3))

	// Q4: 0.005 selectivity — the paper runs Sample-First at 10x samples
	// for Fig. 6 (the full 1/selectivity factor appears in Fig. 5).
	p4, err := Q4PIP(data, 0.005, opt.Samples, opt.Seed)
	if err != nil {
		return nil, err
	}
	s4, err := Q4SF(data, 0.005, opt.Samples*10, opt.Seed)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig6Row(p4, s4))
	return rows, nil
}

func fig6Row(p, s QueryResult) Fig6Row {
	return Fig6Row{
		Query:    p.Name,
		PIPQuery: p.QueryTime, PIPSample: p.SampleTime,
		SFTime: s.Total(), SFWorlds: s.Samples,
		PIPValue: p.Value, SFValue: s.Value,
	}
}

// WriteFig6 renders the comparison.
func WriteFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Fig. 6 — query evaluation times, PIP (query+sample) vs Sample-First")
	fmt.Fprintf(w, "%6s %12s %12s %12s %14s %10s\n",
		"query", "PIP query", "PIP sample", "PIP total", "Sample-First", "SF worlds")
	for _, r := range rows {
		fmt.Fprintf(w, "%6s %12s %12s %12s %14s %10d\n", r.Query,
			r.PIPQuery.Round(time.Millisecond), r.PIPSample.Round(time.Millisecond),
			(r.PIPQuery + r.PIPSample).Round(time.Millisecond),
			r.SFTime.Round(time.Millisecond), r.SFWorlds)
	}
}

// ---------------------------------------------------------------------------
// Fig. 7: RMS error vs number of samples.

// Fig7Row is one (sample count) point of an RMS series.
type Fig7Row struct {
	Samples int
	PIPRMS  float64
	SFRMS   float64
}

// rmsSeries runs `trials` trials at each sample count, computing the RMS
// error of per-part estimates around the algebraic truth, normalized by the
// truth and averaged over parts (the paper's procedure).
func rmsSeries(parts []tpch.Part, truths []float64, trials int, counts []int, seed uint64,
	pipRun func(n int, trialSeed uint64) ([]float64, error),
	sfRun func(n int, trialSeed uint64) ([]float64, error)) ([]Fig7Row, error) {

	rows := make([]Fig7Row, 0, len(counts))
	for _, n := range counts {
		var pipErr, sfErr float64
		for trial := 0; trial < trials; trial++ {
			ts := seed + uint64(trial)*1000003
			pipVals, err := pipRun(n, ts)
			if err != nil {
				return nil, err
			}
			sfVals, err := sfRun(n, ts)
			if err != nil {
				return nil, err
			}
			pipErr += sumSqRelErr(pipVals, truths)
			sfErr += sumSqRelErr(sfVals, truths)
		}
		denom := float64(trials * len(parts))
		rows = append(rows, Fig7Row{
			Samples: n,
			PIPRMS:  math.Sqrt(pipErr / denom),
			SFRMS:   math.Sqrt(sfErr / denom),
		})
	}
	return rows, nil
}

// sumSqRelErr accumulates squared relative errors; estimates that produced
// no samples at all (NaN — e.g. Sample-First lost every world) are charged
// a full 100% error, which is the natural reading of "the query returned
// nothing useful".
func sumSqRelErr(vals, truths []float64) float64 {
	total := 0.0
	for i, v := range vals {
		if truths[i] == 0 {
			continue
		}
		rel := 1.0
		if !math.IsNaN(v) {
			rel = (v - truths[i]) / truths[i]
		}
		total += rel * rel
	}
	return total
}

// Fig7a runs the group-by RMS experiment at selectivity 0.005.
func Fig7a(opt Options) ([]Fig7Row, error) {
	const sel = 0.005
	data := tpch.Generate(opt.Scale, opt.Seed)
	parts := data.Parts
	if len(parts) > opt.Fig7Parts {
		parts = parts[:opt.Fig7Parts]
	}
	truths := make([]float64, len(parts))
	for i, p := range parts {
		truths[i] = Q4Truth(p, sel)
	}
	counts := []int{1, 10, 100, 1000}
	return rmsSeries(parts, truths, opt.Trials, counts, opt.Seed,
		func(n int, ts uint64) ([]float64, error) { return Q4PIPValues(parts, sel, n, ts) },
		func(n int, ts uint64) ([]float64, error) { return Q4SFValues(parts, sel, n, ts) })
}

// Fig7b runs the two-variable-comparison RMS experiment at selectivity 0.05.
func Fig7b(opt Options) ([]Fig7Row, error) {
	const sel = 0.05
	data := tpch.Generate(opt.Scale, opt.Seed)
	parts := data.Parts
	if len(parts) > opt.Fig7Parts {
		parts = parts[:opt.Fig7Parts]
	}
	truths := make([]float64, len(parts))
	for i, p := range parts {
		dm, _ := q5Model(p, sel)
		truths[i] = Q5Truth(dm)
	}
	counts := []int{1, 10, 100, 1000}
	return rmsSeries(parts, truths, opt.Trials, counts, opt.Seed,
		func(n int, ts uint64) ([]float64, error) { return Q5PIPValues(parts, sel, n, ts) },
		func(n int, ts uint64) ([]float64, error) { return Q5SFValues(parts, sel, n, ts) })
}

// WriteFig7 renders an RMS series.
func WriteFig7(w io.Writer, label string, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig. 7%s — RMS error vs number of samples\n", label)
	fmt.Fprintf(w, "%10s %12s %14s %12s\n", "samples", "PIP RMS", "SampleFirst", "SF/PIP")
	for _, r := range rows {
		ratio := r.SFRMS / r.PIPRMS
		fmt.Fprintf(w, "%10d %12.4f %14.4f %11.1fx\n", r.Samples, r.PIPRMS, r.SFRMS, ratio)
	}
}

// ---------------------------------------------------------------------------
// Fig. 8: iceberg danger query — PIP exact via CDFs, Sample-First sampling
// 10k worlds; the figure is the CDF of Sample-First's relative error over
// the 100 ships.

// Fig8Result carries the error distribution plus timing.
type Fig8Result struct {
	// SFErrors are per-ship relative errors of Sample-First, sorted
	// ascending (the CDF of the paper's figure).
	SFErrors []float64
	PIPTime  time.Duration
	SFTime   time.Duration
	// PIPExact confirms PIP's result matched the closed form (always 0
	// error by construction; kept for the experiment record).
	PIPMaxError float64
}

// Fig8 runs the iceberg experiment.
func Fig8(opt Options) (*Fig8Result, error) {
	data := iceberg.Generate(opt.Fig8Bergs, opt.Fig8Ships, opt.Seed)
	res := &Fig8Result{}

	// PIP: exact CDF integration per (ship, iceberg). The deferred
	// symbolic representation reduces each proximity probability to four
	// Normal CDF evaluations.
	t0 := time.Now()
	pipThreats := make([]float64, len(data.Ships))
	for i, ship := range data.Ships {
		pipThreats[i] = pipIcebergThreat(data, ship)
	}
	res.PIPTime = time.Since(t0)

	// Reference closed form (same math, straight-line code) to confirm
	// exactness.
	for i, ship := range data.Ships {
		want := iceberg.ExactThreat(data, ship)
		if want > 0 {
			rel := math.Abs(pipThreats[i]-want) / want
			if rel > res.PIPMaxError {
				res.PIPMaxError = rel
			}
		}
	}

	// Sample-First: position arrays per iceberg, then per-world proximity.
	t1 := time.Now()
	sfThreats, err := sfIcebergThreats(data, opt.Fig8Worlds, opt.Seed)
	if err != nil {
		return nil, err
	}
	res.SFTime = time.Since(t1)

	for i, ship := range data.Ships {
		want := iceberg.ExactThreat(data, ship)
		if want <= 0 {
			continue
		}
		res.SFErrors = append(res.SFErrors, math.Abs(sfThreats[i]-want)/want)
	}
	sort.Float64s(res.SFErrors)
	return res, nil
}

// pipIcebergThreat evaluates the threat via PIP's exact machinery: a
// per-iceberg clause over two Normal position variables, integrated by the
// conf() exact CDF path (each axis is an independent single-variable
// interval group).
func pipIcebergThreat(data *iceberg.Data, ship iceberg.Ship) float64 {
	return icebergThreatExactCDF(data, ship)
}

// sfIcebergThreats estimates each ship's threat with per-world sampled
// iceberg positions.
func sfIcebergThreats(data *iceberg.Data, worlds int, seed uint64) ([]float64, error) {
	// Generate position sample arrays per iceberg (the sample-first
	// commitment) shared across ships, as tuple bundles would be.
	lat := make([][]float64, len(data.Sightings))
	lon := make([][]float64, len(data.Sightings))
	for i, s := range data.Sightings {
		lat[i] = make([]float64, worlds)
		lon[i] = make([]float64, worlds)
		std := s.PositionStd()
		for w := 0; w < worlds; w++ {
			r := samplefirstKeyed(seed, uint64(i), uint64(w))
			lat[i][w] = s.Lat + std*r.NormFloat64()
			lon[i][w] = s.Lon + std*r.NormFloat64()
		}
	}
	out := make([]float64, len(data.Ships))
	for si, ship := range data.Ships {
		total := 0.0
		for i, s := range data.Sightings {
			near := 0
			for w := 0; w < worlds; w++ {
				if math.Abs(lat[i][w]-ship.Lat) < iceberg.ProximityRadius &&
					math.Abs(lon[i][w]-ship.Lon) < iceberg.ProximityRadius {
					near++
				}
			}
			p := float64(near) / float64(worlds)
			if p > iceberg.DangerThreshold {
				total += s.Danger() * p
			}
		}
		out[si] = total
	}
	return out, nil
}

// WriteFig8 renders the error CDF and timing comparison.
func WriteFig8(w io.Writer, r *Fig8Result) {
	fmt.Fprintln(w, "Fig. 8 — iceberg danger query: Sample-First error distribution")
	fmt.Fprintf(w, "PIP:          exact via CDF integration in %s (max rel. error %.2g)\n",
		r.PIPTime.Round(time.Millisecond), r.PIPMaxError)
	fmt.Fprintf(w, "Sample-First: sampled in %s\n", r.SFTime.Round(time.Millisecond))
	fmt.Fprintf(w, "%22s %10s\n", "cumulative fraction", "rel. error")
	n := len(r.SFErrors)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		idx := int(q*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		fmt.Fprintf(w, "%21.0f%% %10.4f\n", q*100, r.SFErrors[idx])
	}
}
