package bench

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"pip/internal/core"
	"pip/internal/sampler"
	"pip/internal/sql"
	"pip/internal/tpch"
)

// VectorizeRow is one workload's vectorized-vs-row comparison: the same SQL
// statement on the same catalog, once per engine. Identical reports whether
// the two rendered result tables were byte-identical — the differential
// contract of internal/sql/vectest, re-checked on every benchmark run so a
// perf number can never hide a correctness break.
type VectorizeRow struct {
	Workload  string
	Query     string
	RowTime   time.Duration // row-at-a-time engine, per execution
	VecTime   time.Duration // vectorized engine, per execution
	Identical bool
}

// Speedup returns RowTime / VecTime.
func (r VectorizeRow) Speedup() float64 {
	if r.VecTime == 0 {
		return 0
	}
	return float64(r.RowTime) / float64(r.VecTime)
}

// vectorizeIters is the per-engine measurement loop: enough executions to
// swamp parse/plan noise without slowing the quick CI run.
const vectorizeIters = 5

// VectorizeAB measures the columnar batch engine against the row-at-a-time
// fallback (the two sides of SET vectorize) on SQL workloads chosen to
// stress each vectorized layer: a deterministic scan/filter/project
// pipeline (columnar batches), an equi-join feeding an aggregate (binary
// join keys), and sampled aggregates over symbolic expressions (compiled
// expression programs; the expressions are nonlinear so the closed-form
// rewrite cannot skip sampling). Both engines execute on one shared
// catalog, so the symbolic
// variables — and therefore the sampled worlds — are identical, and the
// result tables must match byte for byte.
func VectorizeAB(opt Options) ([]VectorizeRow, error) {
	db, err := vectorizeDB(opt)
	if err != nil {
		return nil, err
	}
	workloads := []struct{ name, q string }{
		{"filter-project",
			"SELECT okey, price * 1.08 AS gross FROM orders WHERE price > 250"},
		{"hash-join-agg",
			"SELECT expected_sum(o.price) AS rev FROM orders o, customers c WHERE o.cust = c.cust AND c.growth > 0.02"},
		{"sampled-sum",
			"SELECT expected_sum(morders * morders + morders * price) AS rev FROM customers"},
		{"group-moments",
			"SELECT nation, expected_stddev(manuf + ship) AS spread FROM suppliers GROUP BY nation ORDER BY nation"},
	}

	rows := make([]VectorizeRow, 0, len(workloads))
	for _, wl := range workloads {
		rowStr, rowTime, err := vectorizeMeasure(db, wl.q, true)
		if err != nil {
			return nil, fmt.Errorf("%s (row engine): %w", wl.name, err)
		}
		vecStr, vecTime, err := vectorizeMeasure(db, wl.q, false)
		if err != nil {
			return nil, fmt.Errorf("%s (vectorized): %w", wl.name, err)
		}
		rows = append(rows, VectorizeRow{
			Workload: wl.name, Query: wl.q,
			RowTime: rowTime, VecTime: vecTime,
			Identical: rowStr == vecStr,
		})
	}
	return rows, nil
}

// vectorizeMeasure runs one query on one engine: a warmup execution whose
// rendered table is kept for the bit-identity check, then vectorizeIters
// timed executions. Deferred sampling makes every execution draw the same
// worlds, so repetition changes timing only.
func vectorizeMeasure(db *core.DB, q string, disable bool) (string, time.Duration, error) {
	db.UpdateConfig(func(cfg *sampler.Config) { cfg.DisableVectorize = disable })
	ctx := context.Background()
	out, err := sql.ExecContext(ctx, db, q)
	if err != nil {
		return "", 0, err
	}
	t0 := time.Now()
	for i := 0; i < vectorizeIters; i++ {
		if _, err := sql.ExecContext(ctx, db, q); err != nil {
			return "", 0, err
		}
	}
	return out.String(), time.Since(t0) / vectorizeIters, nil
}

// vectorizeDB seeds the A/B catalog from the TPC-H generator at the
// option's scale: deterministic historical orders, customers carrying the
// Q1 Poisson order model, and suppliers carrying the Q2 Normal duration
// models. Everything allocates through SQL CREATE_VARIABLE so the catalog
// is a pure function of (scale, seed).
func vectorizeDB(opt Options) (*core.DB, error) {
	cfg := sampler.DefaultConfig()
	cfg.WorldSeed = opt.Seed
	cfg.FixedSamples = opt.Samples
	db := core.NewDB(cfg)
	data := tpch.Generate(opt.Scale, opt.Seed)

	exec := func(q string) error {
		_, err := sql.ExecContext(context.Background(), db, q)
		return err
	}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	if err := exec("CREATE TABLE customers (cust, growth, price, morders)"); err != nil {
		return nil, err
	}
	var vals []string
	flush := func(table string) error {
		if len(vals) == 0 {
			return nil
		}
		err := exec("INSERT INTO " + table + " VALUES " + strings.Join(vals, ", "))
		vals = vals[:0]
		return err
	}
	for _, c := range data.Customers {
		vals = append(vals, fmt.Sprintf("(%d, %s, %s, CREATE_VARIABLE('Poisson', %s))",
			c.CustKey, g(c.GrowthRate()), g(c.AvgOrderPrice), g(c.GrowthRate()*10)))
		if len(vals) == 64 {
			if err := flush("customers"); err != nil {
				return nil, err
			}
		}
	}
	if err := flush("customers"); err != nil {
		return nil, err
	}

	if err := exec("CREATE TABLE suppliers (supp, nation, manuf, ship)"); err != nil {
		return nil, err
	}
	for _, sup := range data.Suppliers {
		vals = append(vals, fmt.Sprintf("(%d, '%s', CREATE_VARIABLE('Normal', %s, %s), CREATE_VARIABLE('Normal', %s, %s))",
			sup.SuppKey, sup.Nation, g(sup.ManufMean), g(sup.ManufStd), g(sup.ShipMean), g(sup.ShipStd)))
		if len(vals) == 64 {
			if err := flush("suppliers"); err != nil {
				return nil, err
			}
		}
	}
	if err := flush("suppliers"); err != nil {
		return nil, err
	}

	if err := exec("CREATE TABLE orders (okey, cust, price)"); err != nil {
		return nil, err
	}
	for _, o := range data.Orders {
		vals = append(vals, fmt.Sprintf("(%d, %d, %s)", o.OrderKey, o.CustKey, g(o.Price)))
		if len(vals) == 64 {
			if err := flush("orders"); err != nil {
				return nil, err
			}
		}
	}
	if err := flush("orders"); err != nil {
		return nil, err
	}
	return db, nil
}

// WriteVectorize renders the A/B comparison.
func WriteVectorize(w io.Writer, rows []VectorizeRow) {
	fmt.Fprintln(w, "Vectorize A/B — columnar batch engine vs row-at-a-time fallback")
	fmt.Fprintln(w, "(bit-identical: both engines must render byte-equal result tables)")
	fmt.Fprintf(w, "%16s %12s %12s %9s %15s\n",
		"workload", "row engine", "vectorized", "speedup", "bit-identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%16s %12s %12s %8.2fx %15v\n",
			r.Workload,
			r.RowTime.Round(time.Microsecond), r.VecTime.Round(time.Microsecond),
			r.Speedup(), r.Identical)
	}
}
