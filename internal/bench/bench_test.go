package bench

import (
	"math"
	"strings"
	"testing"

	"pip/internal/tpch"
)

func quick() Options { return QuickOptions() }

func TestQ1BothEnginesAgree(t *testing.T) {
	data := tpch.Generate(tpch.SmallScale(), 1)
	p, err := Q1PIP(data, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Q1SF(data, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: sum over customers of lambda * price.
	truth := 0.0
	for _, c := range data.Customers {
		truth += c.GrowthRate() * 10 * c.AvgOrderPrice
	}
	if math.Abs(p.Value-truth) > 0.1*truth {
		t.Fatalf("PIP Q1 %v vs truth %v", p.Value, truth)
	}
	if math.Abs(s.Value-truth) > 0.1*truth {
		t.Fatalf("SF Q1 %v vs truth %v", s.Value, truth)
	}
}

func TestQ2BothEnginesAgree(t *testing.T) {
	data := tpch.Generate(tpch.SmallScale(), 1)
	p, err := Q2PIP(data, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Q2SF(data, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.Value <= 0 || s.Value <= 0 {
		t.Fatalf("degenerate Q2 values %v %v", p.Value, s.Value)
	}
	if math.Abs(p.Value-s.Value) > 0.15*s.Value {
		t.Fatalf("engines disagree: PIP %v, SF %v", p.Value, s.Value)
	}
}

func TestQ3BothEnginesAgree(t *testing.T) {
	data := tpch.Generate(tpch.SmallScale(), 1)
	p, err := Q3PIP(data, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Sample-First needs extra worlds for the selective filter.
	s, err := Q3SF(data, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic truth: sum over customers of
	// P[delivery > threshold] * lambda * price.
	truth := 0.0
	for i, c := range data.Customers {
		sup := data.Suppliers[i%len(data.Suppliers)]
		mu, sigma := q3Delivery(sup)
		pDissat := 1 - 0.5*math.Erfc(-(c.SatisfactionThreshold-mu)/(sigma*math.Sqrt2))
		truth += pDissat * c.GrowthRate() * 10 * c.AvgOrderPrice
	}
	if truth <= 0 {
		t.Fatal("degenerate Q3 truth")
	}
	if math.Abs(p.Value-truth) > 0.15*truth {
		t.Fatalf("PIP Q3 %v vs truth %v", p.Value, truth)
	}
	if math.Abs(s.Value-truth) > 0.25*truth {
		t.Fatalf("SF Q3 %v vs truth %v", s.Value, truth)
	}
}

func TestQ3Selectivity(t *testing.T) {
	// The Q3 predicate should be selective but not degenerate: average
	// P[dissatisfied] in a plausible band.
	data := tpch.Generate(tpch.DefaultScale(), 1)
	total := 0.0
	for i, c := range data.Customers {
		sup := data.Suppliers[i%len(data.Suppliers)]
		mu, sigma := q3Delivery(sup)
		total += 1 - 0.5*math.Erfc(-(c.SatisfactionThreshold-mu)/(sigma*math.Sqrt2))
	}
	avg := total / float64(len(data.Customers))
	if avg < 0.02 || avg > 0.4 {
		t.Fatalf("Q3 average selectivity %v out of band", avg)
	}
}

func TestQ4TruthAndEstimates(t *testing.T) {
	data := tpch.Generate(tpch.SmallScale(), 1)
	parts := data.Parts[:10]
	const sel = 0.05
	pip, err := Q4PIPValues(parts, sel, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		truth := Q4Truth(p, sel)
		if math.Abs(pip[i]-truth) > 0.2*truth {
			t.Fatalf("part %d: PIP %v vs truth %v", i, pip[i], truth)
		}
	}
	// Sample-First with abundant worlds also converges.
	sf, err := Q4SFValues(parts, sel, 40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		truth := Q4Truth(p, sel)
		if math.Abs(sf[i]-truth) > 0.25*truth {
			t.Fatalf("part %d: SF %v vs truth %v", i, sf[i], truth)
		}
	}
}

func TestQ5TruthAndEstimates(t *testing.T) {
	data := tpch.Generate(tpch.SmallScale(), 1)
	parts := data.Parts[:10]
	const sel = 0.05
	pip, err := Q5PIPValues(parts, sel, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		dm, sm := q5Model(p, sel)
		if math.Abs(Q5Selectivity(dm, sm)-sel) > 1e-9 {
			t.Fatalf("model selectivity %v", Q5Selectivity(dm, sm))
		}
		truth := Q5Truth(dm)
		if math.Abs(pip[i]-truth) > 0.25*truth {
			t.Fatalf("part %d: PIP %v vs truth %v", i, pip[i], truth)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	opt := quick()
	rows, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	// The headline claim: Sample-First cost grows as selectivity drops
	// while PIP stays roughly flat — so the SF/PIP ratio at the most
	// selective point must far exceed the least selective point.
	first := float64(rows[0].SFTime) / float64(rows[0].PIPTime)
	last := float64(rows[3].SFTime) / float64(rows[3].PIPTime)
	if last < first*3 {
		t.Fatalf("selectivity scaling not reproduced: ratios %.2f .. %.2f", first, last)
	}
	var sb strings.Builder
	WriteFig5(&sb, rows)
	if !strings.Contains(sb.String(), "selectivity") {
		t.Fatal("renderer broken")
	}
}

func TestFig6Runs(t *testing.T) {
	opt := quick()
	rows, err := Fig6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.PIPValue <= 0 || r.SFValue <= 0 {
			t.Fatalf("%s degenerate values: %+v", r.Query, r)
		}
	}
	var sb strings.Builder
	WriteFig6(&sb, rows)
	if !strings.Contains(sb.String(), "Q1") {
		t.Fatal("renderer broken")
	}
}

func TestFig7aErrorOrdering(t *testing.T) {
	opt := quick()
	rows, err := Fig7a(opt)
	if err != nil {
		t.Fatal(err)
	}
	// At every sample count PIP's RMS error must beat Sample-First's by a
	// wide margin (paper: ~2 orders of magnitude at selectivity 0.005).
	for _, r := range rows[1:] { // skip n=1 where both are noisy
		if r.PIPRMS >= r.SFRMS {
			t.Fatalf("n=%d: PIP RMS %v >= SF RMS %v", r.Samples, r.PIPRMS, r.SFRMS)
		}
	}
	// And PIP's error must shrink with more samples.
	if rows[len(rows)-1].PIPRMS >= rows[0].PIPRMS {
		t.Fatalf("PIP error did not shrink: %v .. %v", rows[0].PIPRMS, rows[len(rows)-1].PIPRMS)
	}
	last := rows[len(rows)-1]
	if last.SFRMS/last.PIPRMS < 5 {
		t.Fatalf("expected a wide PIP advantage at n=1000, got %vx", last.SFRMS/last.PIPRMS)
	}
}

func TestFig7bErrorOrdering(t *testing.T) {
	opt := quick()
	rows, err := Fig7b(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[1:] {
		if r.PIPRMS >= r.SFRMS {
			t.Fatalf("n=%d: PIP RMS %v >= SF RMS %v", r.Samples, r.PIPRMS, r.SFRMS)
		}
	}
}

func TestFig8ExactVsSampled(t *testing.T) {
	opt := quick()
	res, err := Fig8(opt)
	if err != nil {
		t.Fatal(err)
	}
	// PIP's answer is exact.
	if res.PIPMaxError > 1e-9 {
		t.Fatalf("PIP iceberg result not exact: %v", res.PIPMaxError)
	}
	// Sample-First carries visible error on at least some ships.
	if len(res.SFErrors) == 0 {
		t.Fatal("no error samples")
	}
	maxErr := res.SFErrors[len(res.SFErrors)-1]
	if maxErr <= 0 {
		t.Fatal("Sample-First suspiciously exact")
	}
	var sb strings.Builder
	WriteFig8(&sb, res)
	if !strings.Contains(sb.String(), "exact") {
		t.Fatal("renderer broken")
	}
}

func TestTPCHGeneratorDeterminism(t *testing.T) {
	a := tpch.Generate(tpch.SmallScale(), 5)
	b := tpch.Generate(tpch.SmallScale(), 5)
	if len(a.Customers) != len(b.Customers) || a.Customers[3] != b.Customers[3] {
		t.Fatal("generator not deterministic")
	}
	c := tpch.Generate(tpch.SmallScale(), 6)
	if a.Customers[3] == c.Customers[3] {
		t.Fatal("seed ignored")
	}
	if len(a.JapaneseSuppliers()) == 0 {
		t.Fatal("no Japanese suppliers generated")
	}
	for _, cust := range a.Customers {
		if cust.GrowthRate() <= 0 {
			t.Fatal("non-positive growth rate")
		}
	}
}

func TestSpeedupQuickBitIdentical(t *testing.T) {
	opt := QuickOptions()
	opt.Samples = 50
	opt.Fig8Bergs = 60
	rows, err := Speedup(opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d workloads, want 3", len(rows))
	}
	for _, r := range rows {
		if !r.Identical {
			t.Fatalf("%s: parallel run was not bit-identical to sequential", r.Workload)
		}
		if r.Workers != 4 {
			t.Fatalf("%s: workers = %d, want 4", r.Workload, r.Workers)
		}
	}
	var sb strings.Builder
	WriteSpeedup(&sb, rows)
	if !strings.Contains(sb.String(), "bit-identical") {
		t.Fatal("renderer broken")
	}
}
