package bench

import (
	"pip/internal/cond"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/iceberg"
	"pip/internal/prng"
	"pip/internal/sampler"
)

// icebergThreatExactCDF computes a ship's threat through PIP's own exact
// machinery: each iceberg's present position is a pair of Normal random
// variables, "near the ship" is a conjunction of four interval atoms, and
// the sampler's conf() reduces each axis to two CDF evaluations — no
// sampling at all (Fig. 8: "PIP was able to employ CDF sampling and obtain
// an exact result").
func icebergThreatExactCDF(data *iceberg.Data, ship iceberg.Ship) float64 {
	cfg := sampler.DefaultConfig()
	smp := sampler.New(cfg)
	total := 0.0
	var nextID uint64 = 1
	for _, s := range data.Sightings {
		std := s.PositionStd()
		latVar := &expr.Variable{
			Key:  expr.VarKey{ID: nextID},
			Dist: dist.MustInstance(dist.Normal{}, s.Lat, std),
		}
		lonVar := &expr.Variable{
			Key:  expr.VarKey{ID: nextID + 1},
			Dist: dist.MustInstance(dist.Normal{}, s.Lon, std),
		}
		nextID += 2
		clause := cond.Clause{
			cond.NewAtom(expr.NewVar(latVar), cond.GT, expr.Const(ship.Lat-iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(latVar), cond.LT, expr.Const(ship.Lat+iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(lonVar), cond.GT, expr.Const(ship.Lon-iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(lonVar), cond.LT, expr.Const(ship.Lon+iceberg.ProximityRadius)),
		}
		r := smp.Conf(clause)
		if r.Prob > iceberg.DangerThreshold {
			total += s.Danger() * r.Prob
		}
	}
	return total
}

// samplefirstKeyed builds the per-(iceberg, world) generator for the
// Sample-First iceberg run.
func samplefirstKeyed(seed, i, w uint64) *prng.Rand {
	return prng.NewKeyed(seed, 0x5F, i, w)
}
