package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/iceberg"
	"pip/internal/sampler"
	"pip/internal/tpch"
)

// SpeedupRow is one workload's sequential-vs-parallel comparison. Identical
// reports whether the two runs returned bit-identical values — the
// determinism contract of the parallel engine, checked on every run.
type SpeedupRow struct {
	Workload  string
	Workers   int
	SeqTime   time.Duration
	ParTime   time.Duration
	Value     float64
	Identical bool
}

// Speedup returns SeqTime / ParTime.
func (r SpeedupRow) Speedup() float64 {
	if r.ParTime == 0 {
		return 0
	}
	return float64(r.SeqTime) / float64(r.ParTime)
}

// speedupWorkload is one benchmark: run evaluates the workload under the
// given worker count and returns the result value (used for the bit-identity
// check between the sequential and parallel runs).
type speedupWorkload struct {
	name string
	run  func(workers int) (float64, error)
}

// Speedup measures the parallel world-evaluation engine: each workload runs
// once with Workers=1 and once with Workers=workers (0 = one per CPU), and
// the report records wall-clock speedup plus whether the two results were
// bit-identical. Workloads cover the engine's three parallel axes:
//
//   - iceberg-threat: ExpectedSum over the iceberg sighting c-table with
//     exact CDF integration disabled — thousands of independent rows, each
//     needing sampled confidence (row-parallel axis);
//   - tpch-q1: the paper's Q1 revenue prediction, expected_sum over Poisson
//     revenue models (row-parallel over customers);
//   - tpch-q5: the two-variable comparison E[D - S | D > S] — rejection
//     sampling inside one constraint group (sample-parallel axis).
func Speedup(opt Options, workers int) ([]SpeedupRow, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	data := tpch.Generate(opt.Scale, opt.Seed)
	bergs := iceberg.Generate(opt.Fig8Bergs, opt.Fig8Ships, opt.Seed)
	workloads := []speedupWorkload{
		{name: "iceberg-threat", run: func(w int) (float64, error) {
			return icebergThreatSampledSum(bergs, opt.Samples, opt.Seed, w)
		}},
		{name: "tpch-q1", run: func(w int) (float64, error) {
			return q1ExpectedSum(data, opt.Samples, opt.Seed, w)
		}},
		{name: "tpch-q5", run: func(w int) (float64, error) {
			return q5RejectionSum(data, opt.Samples, opt.Seed, w)
		}},
	}

	rows := make([]SpeedupRow, 0, len(workloads))
	for _, wl := range workloads {
		t0 := time.Now()
		seqVal, err := wl.run(1)
		if err != nil {
			return nil, fmt.Errorf("%s (sequential): %w", wl.name, err)
		}
		seqTime := time.Since(t0)

		t1 := time.Now()
		parVal, err := wl.run(workers)
		if err != nil {
			return nil, fmt.Errorf("%s (parallel): %w", wl.name, err)
		}
		parTime := time.Since(t1)

		rows = append(rows, SpeedupRow{
			Workload: wl.name, Workers: workers,
			SeqTime: seqTime, ParTime: parTime,
			Value: parVal,
			// Bit comparison so an identical NaN (rejection-cap exhaustion
			// in both runs) still counts as identical.
			Identical: math.Float64bits(seqVal) == math.Float64bits(parVal),
		})
	}
	return rows, nil
}

// speedupDB builds the fixed-budget engine configuration the speedup runs
// share, varying only the worker count.
func speedupDB(samples int, seed uint64, workers int) *core.DB {
	cfg := sampler.DefaultConfig()
	cfg.FixedSamples = samples
	cfg.WorldSeed = seed
	cfg.DisableClosedForm = true
	cfg.Workers = workers
	return core.NewDB(cfg)
}

// icebergThreatSampledSum evaluates the iceberg danger query for the first
// ship as one expected_sum over a per-sighting c-table: row r carries the
// sighting's danger score under the condition "iceberg r is near the ship".
// Exact CDF integration is disabled so every row's confidence is sampled —
// the workload the paper's Fig. 8 uses to show what PIP avoids, repurposed
// here to stress the row-parallel aggregate path.
func icebergThreatSampledSum(data *iceberg.Data, samples int, seed uint64, workers int) (float64, error) {
	if len(data.Ships) == 0 {
		return 0, fmt.Errorf("bench: no ships generated")
	}
	ship := data.Ships[0]
	db := speedupDB(samples, seed, workers)
	db.UpdateConfig(func(cfg *sampler.Config) { cfg.DisableExactCDF = true })

	tb := ctable.New("threat", "danger")
	for _, s := range data.Sightings {
		std := s.PositionStd()
		latVar := db.NewVariableFromInstance(dist.MustInstance(dist.Normal{}, s.Lat, std), "lat")
		lonVar := db.NewVariableFromInstance(dist.MustInstance(dist.Normal{}, s.Lon, std), "lon")
		tup := ctable.NewTuple(ctable.Float(s.Danger()))
		tup.Cond = cond.FromClause(cond.Clause{
			cond.NewAtom(expr.NewVar(latVar), cond.GT, expr.Const(ship.Lat-iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(latVar), cond.LT, expr.Const(ship.Lat+iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(lonVar), cond.GT, expr.Const(ship.Lon-iceberg.ProximityRadius)),
			cond.NewAtom(expr.NewVar(lonVar), cond.LT, expr.Const(ship.Lon+iceberg.ProximityRadius)),
		})
		tb.MustAppend(tup)
	}
	res, err := db.Sampler().ExpectedSum(tb, 0)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// q1ExpectedSum is the paper's Q1 (predicted revenue increase) under a
// configurable worker count: expected_sum over one Poisson revenue model
// per customer.
func q1ExpectedSum(data *tpch.Data, samples int, seed uint64, workers int) (float64, error) {
	db := speedupDB(samples, seed, workers)
	tb := ctable.New("q1", "cust", "extra_revenue")
	for _, c := range data.Customers {
		lambda := c.GrowthRate() * 10
		v := db.NewVariableFromInstance(dist.MustInstance(dist.Poisson{}, lambda), "orders")
		rev := expr.Mul(expr.NewVar(v), expr.Const(c.AvgOrderPrice))
		tb.MustAppend(ctable.NewTuple(ctable.Int(int64(c.CustKey)), ctable.Symbolic(rev)))
	}
	res, err := db.Sampler().ExpectedSum(tb, 1)
	if err != nil {
		return 0, err
	}
	return res.Value, nil
}

// q5RejectionSum sums the paper's Q5 per-part conditional expectations
// E[D - S | D > S]: each part is a single two-variable constraint group, so
// the work is rejection sampling sharded across the worker pool by sample
// index.
func q5RejectionSum(data *tpch.Data, samples int, seed uint64, workers int) (float64, error) {
	const selectivity = 0.05
	db := speedupDB(samples, seed, workers)
	smp := db.Sampler()
	total := 0.0
	for _, p := range data.Parts {
		dm, sm := q5Model(p, selectivity)
		d := db.NewVariableFromInstance(dist.MustInstance(dist.Exponential{}, 1/dm), "demand")
		s := db.NewVariableFromInstance(dist.MustInstance(dist.Exponential{}, 1/sm), "supply")
		e := expr.Sub(expr.NewVar(d), expr.NewVar(s))
		c := cond.Clause{cond.NewAtom(expr.NewVar(d), cond.GT, expr.NewVar(s))}
		total += smp.Expectation(e, c, false).Mean
	}
	return total, nil
}

// WriteSpeedup renders the sequential-vs-parallel comparison.
func WriteSpeedup(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintln(w, "Speedup — sequential (workers=1) vs parallel world evaluation")
	fmt.Fprintln(w, "(bit-identical: equal seed must give equal results at any worker count)")
	fmt.Fprintf(w, "%16s %9s %12s %12s %9s %15s\n",
		"workload", "workers", "sequential", "parallel", "speedup", "bit-identical")
	for _, r := range rows {
		fmt.Fprintf(w, "%16s %9d %12s %12s %8.2fx %15v\n",
			r.Workload, r.Workers,
			r.SeqTime.Round(time.Millisecond), r.ParTime.Round(time.Millisecond),
			r.Speedup(), r.Identical)
	}
}
