// Package bench implements the paper's evaluation workloads (§VI): queries
// Q1–Q5 over the synthetic TPC-H data and the iceberg danger query, each in
// two variants — PIP (symbolic c-tables + deferred goal-directed sampling)
// and Sample-First (MCDB-style tuple bundles) — plus one driver per figure
// that regenerates the paper's series.
package bench

import (
	"math"
	"time"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/prng"
	"pip/internal/samplefirst"
	"pip/internal/sampler"
	"pip/internal/tpch"
)

// QueryResult reports one query run with the paper's query/sample phase
// split for PIP (Fig. 6 stacks the two).
type QueryResult struct {
	Name       string
	Value      float64
	QueryTime  time.Duration // deterministic phase: building the result c-table
	SampleTime time.Duration // probabilistic phase: expectations/confidences
	Samples    int           // sample budget used
}

// Total returns the end-to-end duration.
func (q QueryResult) Total() time.Duration { return q.QueryTime + q.SampleTime }

// pipDB builds a PIP engine with a fixed per-expectation sample budget
// (the paper's experiments fix 1000 samples) and closed-form shortcuts
// disabled so PIP does the same sampling work the paper measures.
func pipDB(samples int, seed uint64) *core.DB {
	cfg := sampler.DefaultConfig()
	cfg.FixedSamples = samples
	cfg.WorldSeed = seed
	cfg.DisableClosedForm = true
	return core.NewDB(cfg)
}

// ---------------------------------------------------------------------------
// Q1: predicted revenue increase (MCDB Q1 analogue).
//
// Past purchase growth parametrizes a Poisson prediction of additional
// orders per customer; the query sums predicted additional revenue.

// Q1PIP runs Q1 on PIP.
func Q1PIP(data *tpch.Data, samples int, seed uint64) (QueryResult, error) {
	db := pipDB(samples, seed)
	t0 := time.Now()
	tb := ctable.New("q1", "cust", "extra_revenue")
	for _, c := range data.Customers {
		lambda := c.GrowthRate() * 10
		v := db.NewVariableFromInstance(dist.MustInstance(dist.Poisson{}, lambda), "orders")
		rev := expr.Mul(expr.NewVar(v), expr.Const(c.AvgOrderPrice))
		tb.MustAppend(ctable.NewTuple(ctable.Int(int64(c.CustKey)), ctable.Symbolic(rev)))
	}
	queryTime := time.Since(t0)

	t1 := time.Now()
	agg, err := db.Sampler().ExpectedSum(tb, 1)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{
		Name: "Q1", Value: agg.Value,
		QueryTime: queryTime, SampleTime: time.Since(t1), Samples: samples,
	}, nil
}

// Q1SF runs Q1 on Sample-First with the given world count.
func Q1SF(data *tpch.Data, worlds int, seed uint64) (QueryResult, error) {
	t0 := time.Now()
	tb := samplefirst.New("q1", worlds, "cust", "price")
	for _, c := range data.Customers {
		tb.MustAppend(samplefirst.Tuple{Cells: []samplefirst.Cell{
			samplefirst.DetCell(ctable.Float(c.GrowthRate() * 10)),
			samplefirst.DetCell(ctable.Float(c.AvgOrderPrice)),
		}})
	}
	// Sample-first moment: generate every world's order count now.
	err := tb.GenerateColumn("orders", seed, func(t *samplefirst.Tuple) (dist.Instance, error) {
		lambda, _ := t.Cells[0].Det.AsFloat()
		return dist.NewInstance(dist.Poisson{}, lambda)
	})
	if err != nil {
		return QueryResult{}, err
	}
	proj, err := tb.Project([]string{"rev"}, []samplefirst.Scalar{
		samplefirst.BinOp{Op: '*', Left: samplefirst.Col(2), Right: samplefirst.Col(1)},
	})
	if err != nil {
		return QueryResult{}, err
	}
	val, err := proj.ExpectedSum(0)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Name: "Q1", Value: val, QueryTime: time.Since(t0), Samples: worlds}, nil
}

// ---------------------------------------------------------------------------
// Q2: expected latest delivery date over today's parts from Japanese
// suppliers (MCDB Q2 analogue): manufacturing + shipping Normals, then
// expected_max.

// q2PendingOrders picks the deterministic skeleton: one pending order per
// (part, Japanese supplier) pair, limited to keep the max manageable.
func q2PendingOrders(data *tpch.Data) []tpch.Supplier {
	return data.JapaneseSuppliers()
}

// Q2PIP runs Q2 on PIP.
func Q2PIP(data *tpch.Data, samples int, seed uint64) (QueryResult, error) {
	db := pipDB(samples, seed)
	t0 := time.Now()
	suppliers := q2PendingOrders(data)
	tb := ctable.New("q2", "supp", "delivery")
	for i, s := range suppliers {
		manuf := db.NewVariableFromInstance(dist.MustInstance(dist.Normal{}, s.ManufMean, s.ManufStd), "manuf")
		ship := db.NewVariableFromInstance(dist.MustInstance(dist.Normal{}, s.ShipMean, s.ShipStd), "ship")
		// Each pending part order for this supplier shares the model.
		for p := 0; p < 4; p++ {
			delivery := expr.Add(expr.NewVar(manuf), expr.NewVar(ship))
			tb.MustAppend(ctable.NewTuple(ctable.Int(int64(i*4+p)), ctable.Symbolic(delivery)))
		}
	}
	queryTime := time.Since(t0)

	t1 := time.Now()
	agg, err := db.Sampler().ExpectedMax(tb, 1, 0)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{
		Name: "Q2", Value: agg.Value,
		QueryTime: queryTime, SampleTime: time.Since(t1), Samples: samples,
	}, nil
}

// Q2SF runs Q2 on Sample-First.
func Q2SF(data *tpch.Data, worlds int, seed uint64) (QueryResult, error) {
	t0 := time.Now()
	suppliers := q2PendingOrders(data)
	tb := samplefirst.New("q2", worlds, "mm", "ms", "sm", "ss")
	for _, s := range suppliers {
		for p := 0; p < 4; p++ {
			tb.MustAppend(samplefirst.Tuple{Cells: []samplefirst.Cell{
				samplefirst.DetCell(ctable.Float(s.ManufMean)),
				samplefirst.DetCell(ctable.Float(s.ManufStd)),
				samplefirst.DetCell(ctable.Float(s.ShipMean)),
				samplefirst.DetCell(ctable.Float(s.ShipStd)),
			}})
		}
	}
	err := tb.GenerateColumn("manuf", seed, func(t *samplefirst.Tuple) (dist.Instance, error) {
		m, _ := t.Cells[0].Det.AsFloat()
		sd, _ := t.Cells[1].Det.AsFloat()
		return dist.NewInstance(dist.Normal{}, m, sd)
	})
	if err != nil {
		return QueryResult{}, err
	}
	err = tb.GenerateColumn("ship", seed+1, func(t *samplefirst.Tuple) (dist.Instance, error) {
		m, _ := t.Cells[2].Det.AsFloat()
		sd, _ := t.Cells[3].Det.AsFloat()
		return dist.NewInstance(dist.Normal{}, m, sd)
	})
	if err != nil {
		return QueryResult{}, err
	}
	proj, err := tb.Project([]string{"delivery"}, []samplefirst.Scalar{
		samplefirst.BinOp{Op: '+', Left: samplefirst.Col(4), Right: samplefirst.Col(5)},
	})
	if err != nil {
		return QueryResult{}, err
	}
	val, err := proj.ExpectedMax(0)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Name: "Q2", Value: val, QueryTime: time.Since(t0), Samples: worlds}, nil
}

// ---------------------------------------------------------------------------
// Q3: profit lost to dissatisfied customers — combines Q1's revenue model
// with Q2's delivery model through a selective probabilistic predicate
// (delivery > customer satisfaction threshold; average selectivity ~0.1).
// The delivery-time parameters are pre-materialized per the paper.

// q3Delivery returns the single-Normal delivery model for a customer's
// pending order (sum of independent manufacturing and shipping Normals).
func q3Delivery(s tpch.Supplier) (mu, sigma float64) {
	return s.ManufMean + s.ShipMean, math.Sqrt(s.ManufStd*s.ManufStd + s.ShipStd*s.ShipStd)
}

// Q3PIP runs Q3 on PIP.
func Q3PIP(data *tpch.Data, samples int, seed uint64) (QueryResult, error) {
	db := pipDB(samples, seed)
	t0 := time.Now()
	tb := ctable.New("q3", "cust", "lost_profit")
	for i, c := range data.Customers {
		s := data.Suppliers[i%len(data.Suppliers)]
		mu, sigma := q3Delivery(s)
		delivery := db.NewVariableFromInstance(dist.MustInstance(dist.Normal{}, mu, sigma), "delivery")
		profitVar := db.NewVariableFromInstance(dist.MustInstance(dist.Poisson{}, c.GrowthRate()*10), "orders")
		profit := expr.Mul(expr.NewVar(profitVar), expr.Const(c.AvgOrderPrice))
		tup := ctable.NewTuple(ctable.Int(int64(c.CustKey)), ctable.Symbolic(profit))
		tup.Cond = cond.FromClause(cond.Clause{
			cond.NewAtom(expr.NewVar(delivery), cond.GT, expr.Const(c.SatisfactionThreshold)),
		})
		tb.MustAppend(tup)
	}
	queryTime := time.Since(t0)

	t1 := time.Now()
	agg, err := db.Sampler().ExpectedSum(tb, 1)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{
		Name: "Q3", Value: agg.Value,
		QueryTime: queryTime, SampleTime: time.Since(t1), Samples: samples,
	}, nil
}

// Q3SF runs Q3 on Sample-First: the selective predicate discards sample
// mass, so matching PIP's accuracy requires ~1/selectivity more worlds.
func Q3SF(data *tpch.Data, worlds int, seed uint64) (QueryResult, error) {
	t0 := time.Now()
	tb := samplefirst.New("q3", worlds, "lambda", "price", "dmu", "dsigma", "thresh")
	for i, c := range data.Customers {
		s := data.Suppliers[i%len(data.Suppliers)]
		mu, sigma := q3Delivery(s)
		tb.MustAppend(samplefirst.Tuple{Cells: []samplefirst.Cell{
			samplefirst.DetCell(ctable.Float(c.GrowthRate() * 10)),
			samplefirst.DetCell(ctable.Float(c.AvgOrderPrice)),
			samplefirst.DetCell(ctable.Float(mu)),
			samplefirst.DetCell(ctable.Float(sigma)),
			samplefirst.DetCell(ctable.Float(c.SatisfactionThreshold)),
		}})
	}
	err := tb.GenerateColumn("orders", seed, func(t *samplefirst.Tuple) (dist.Instance, error) {
		lambda, _ := t.Cells[0].Det.AsFloat()
		return dist.NewInstance(dist.Poisson{}, lambda)
	})
	if err != nil {
		return QueryResult{}, err
	}
	err = tb.GenerateColumn("delivery", seed+1, func(t *samplefirst.Tuple) (dist.Instance, error) {
		mu, _ := t.Cells[2].Det.AsFloat()
		sigma, _ := t.Cells[3].Det.AsFloat()
		return dist.NewInstance(dist.Normal{}, mu, sigma)
	})
	if err != nil {
		return QueryResult{}, err
	}
	sel, err := tb.SelectWorlds(samplefirst.Col(6), samplefirst.GT, samplefirst.Col(4))
	if err != nil {
		return QueryResult{}, err
	}
	proj, err := sel.Project([]string{"lost"}, []samplefirst.Scalar{
		samplefirst.BinOp{Op: '*', Left: samplefirst.Col(5), Right: samplefirst.Col(1)},
	})
	if err != nil {
		return QueryResult{}, err
	}
	val, err := proj.ExpectedSum(0)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Name: "Q3", Value: val, QueryTime: time.Since(t0), Samples: worlds}, nil
}

// ---------------------------------------------------------------------------
// Q4: per-part predicted sales under an extreme-popularity scenario — the
// group-by query behind Fig. 5 and Fig. 7(a). Sales increase ~ Poisson,
// popularity multiplier ~ Exponential; the filter keeps only worlds where
// the multiplier exceeds the threshold with probability = selectivity.

// Q4Truth returns the per-part algebraically correct conditional value:
// E[N * M | M > t] = lambda * (t + mean) by Poisson independence and the
// exponential's memorylessness.
func Q4Truth(p tpch.Part, selectivity float64) float64 {
	t := q4Threshold(p, selectivity)
	return p.GrowthLambda * (t + 1/p.PopularityRate)
}

func q4Threshold(p tpch.Part, selectivity float64) float64 {
	// P[M > t] = exp(-rate*t) = selectivity.
	return -math.Log(selectivity) / p.PopularityRate
}

// Q4PIPValues computes the per-part conditional expectations on PIP (one
// group per part) with a fixed sample budget per group.
func Q4PIPValues(parts []tpch.Part, selectivity float64, samples int, seed uint64) ([]float64, error) {
	db := pipDB(samples, seed)
	smp := db.Sampler()
	out := make([]float64, len(parts))
	for i, p := range parts {
		n := db.NewVariableFromInstance(dist.MustInstance(dist.Poisson{}, p.GrowthLambda), "incr")
		m := db.NewVariableFromInstance(dist.MustInstance(dist.Exponential{}, p.PopularityRate), "pop")
		e := expr.Mul(expr.NewVar(n), expr.NewVar(m))
		c := cond.Clause{cond.NewAtom(expr.NewVar(m), cond.GT, expr.Const(q4Threshold(p, selectivity)))}
		r := smp.Expectation(e, c, false)
		out[i] = r.Mean
	}
	return out, nil
}

// Q4SFValues computes the same per-part values on Sample-First: all worlds
// are generated first, then the selective filter discards most of them.
func Q4SFValues(parts []tpch.Part, selectivity float64, worlds int, seed uint64) ([]float64, error) {
	out := make([]float64, len(parts))
	for i, p := range parts {
		t := q4Threshold(p, selectivity)
		var sum float64
		var live int
		for w := 0; w < worlds; w++ {
			r := prng.NewKeyed(seed, uint64(i), uint64(w))
			mult := dist.Exponential{}.Generate([]float64{p.PopularityRate}, r)
			incr := dist.Poisson{}.Generate([]float64{p.GrowthLambda}, r)
			if mult > t {
				sum += incr * mult
				live++
			}
		}
		if live == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = sum / float64(live)
	}
	return out, nil
}

// Q4PIP wraps Q4PIPValues as a timed whole-table query (sum over groups).
func Q4PIP(data *tpch.Data, selectivity float64, samples int, seed uint64) (QueryResult, error) {
	t0 := time.Now()
	vals, err := Q4PIPValues(data.Parts, selectivity, samples, seed)
	if err != nil {
		return QueryResult{}, err
	}
	total := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) {
			total += v
		}
	}
	return QueryResult{Name: "Q4", Value: total, SampleTime: time.Since(t0), Samples: samples}, nil
}

// Q4SF wraps Q4SFValues as a timed whole-table query.
func Q4SF(data *tpch.Data, selectivity float64, worlds int, seed uint64) (QueryResult, error) {
	t0 := time.Now()
	vals, err := Q4SFValues(data.Parts, selectivity, worlds, seed)
	if err != nil {
		return QueryResult{}, err
	}
	total := 0.0
	for _, v := range vals {
		if !math.IsNaN(v) {
			total += v
		}
	}
	return QueryResult{Name: "Q4", Value: total, QueryTime: time.Since(t0), Samples: worlds}, nil
}

// ---------------------------------------------------------------------------
// Q5: expected underproduction where demand exceeds supply — the
// two-variable comparison behind Fig. 7(b). Supply ~ Exponential with mean
// 19x the demand mean, giving P[D > S] = 0.05; both the probability and
// E[D - S | D > S] = E[D] have closed forms for verification.

// Q5Truth returns the exact conditional underproduction for a part.
func Q5Truth(demandMean float64) float64 { return demandMean }

// Q5Selectivity returns P[D > S] for the configured rate ratio.
func Q5Selectivity(demandMean, supplyMean float64) float64 {
	rd, rs := 1/demandMean, 1/supplyMean
	return rs / (rs + rd)
}

// q5Model derives per-part demand and supply means targeting the given
// selectivity: supplyMean = demandMean * (1-s)/s.
func q5Model(p tpch.Part, selectivity float64) (demandMean, supplyMean float64) {
	demandMean = p.Quantity
	supplyMean = demandMean * (1 - selectivity) / selectivity
	return
}

// Q5PIPValues computes per-part E[D - S | D > S] on PIP. The two-variable
// atom forces rejection sampling, but PIP redraws immediately after each
// rejection instead of re-running the query.
func Q5PIPValues(parts []tpch.Part, selectivity float64, samples int, seed uint64) ([]float64, error) {
	db := pipDB(samples, seed)
	smp := db.Sampler()
	out := make([]float64, len(parts))
	for i, p := range parts {
		dm, sm := q5Model(p, selectivity)
		d := db.NewVariableFromInstance(dist.MustInstance(dist.Exponential{}, 1/dm), "demand")
		s := db.NewVariableFromInstance(dist.MustInstance(dist.Exponential{}, 1/sm), "supply")
		e := expr.Sub(expr.NewVar(d), expr.NewVar(s))
		c := cond.Clause{cond.NewAtom(expr.NewVar(d), cond.GT, expr.NewVar(s))}
		r := smp.Expectation(e, c, false)
		out[i] = r.Mean
	}
	return out, nil
}

// Q5SFValues computes the same on Sample-First.
func Q5SFValues(parts []tpch.Part, selectivity float64, worlds int, seed uint64) ([]float64, error) {
	out := make([]float64, len(parts))
	for i, p := range parts {
		dm, sm := q5Model(p, selectivity)
		var sum float64
		var live int
		for w := 0; w < worlds; w++ {
			r := prng.NewKeyed(seed, uint64(i), uint64(w))
			d := dist.Exponential{}.Generate([]float64{1 / dm}, r)
			s := dist.Exponential{}.Generate([]float64{1 / sm}, r)
			if d > s {
				sum += d - s
				live++
			}
		}
		if live == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = sum / float64(live)
	}
	return out, nil
}
