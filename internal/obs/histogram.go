package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// observation: per-bucket atomic counts over a static ascending bound
// slice, plus an atomic count and CAS-maintained float64 sum, matching the
// Prometheus histogram data model (an implicit +Inf bucket catches values
// above the last bound). Recording methods are no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bound slice is retained, not copied; callers must not mutate it.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// ExpBuckets returns n ascending bounds starting at start, each factor
// times the previous — the standard latency/size bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, in cumulative
// Prometheus form.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the cumulative count
	// of observations ≤ Bounds[i], and Counts[len(Bounds)] the total (the
	// +Inf bucket).
	Bounds []float64
	Counts []int64
	// Count and Sum are the observation count and value sum.
	Count int64
	Sum   float64
}

// Snapshot copies the histogram's current state with cumulative bucket
// counts (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		s.Counts[i] = cum
	}
	return s
}
