package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSamplerStatsParentChain(t *testing.T) {
	root := &SamplerStats{}
	mid := &SamplerStats{Parent: root}
	leaf := &SamplerStats{Parent: mid}

	leaf.AddSamples(5)
	leaf.AddBatches(2)
	leaf.AddRound()
	leaf.AddRejection(10, 4)
	leaf.AddMetropolis(true)
	leaf.AddMetropolis(false)
	leaf.AddEscalation()
	leaf.AddExactCDFHit()
	leaf.AddClosedFormHit()
	mid.AddSamples(3) // mid-level adds must not reach the leaf

	for _, tc := range []struct {
		name string
		st   *SamplerStats
		want SamplerSnapshot
	}{
		{"leaf", leaf, SamplerSnapshot{Samples: 5, Batches: 2, Rounds: 1,
			RejectionAttempts: 10, RejectionAccepts: 4, MetropolisProposals: 2,
			MetropolisAccepts: 1, Escalations: 1, ExactCDFHits: 1, ClosedFormHits: 1}},
		{"mid", mid, SamplerSnapshot{Samples: 8, Batches: 2, Rounds: 1,
			RejectionAttempts: 10, RejectionAccepts: 4, MetropolisProposals: 2,
			MetropolisAccepts: 1, Escalations: 1, ExactCDFHits: 1, ClosedFormHits: 1}},
		{"root", root, SamplerSnapshot{Samples: 8, Batches: 2, Rounds: 1,
			RejectionAttempts: 10, RejectionAccepts: 4, MetropolisProposals: 2,
			MetropolisAccepts: 1, Escalations: 1, ExactCDFHits: 1, ClosedFormHits: 1}},
	} {
		if got := tc.st.Snapshot(); got != tc.want {
			t.Errorf("%s snapshot = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestSamplerStatsNilSafe(t *testing.T) {
	var s *SamplerStats
	s.AddSamples(1)
	s.AddBatches(1)
	s.AddRound()
	s.AddRejection(1, 1)
	s.AddMetropolis(true)
	s.AddEscalation()
	s.AddExactCDFHit()
	s.AddClosedFormHit()
	s.RecordTrajectory(1, 0.5)
	if tr := s.Trajectory(); tr != nil {
		t.Fatalf("nil stats trajectory = %v, want nil", tr)
	}
	if snap := s.Snapshot(); snap != (SamplerSnapshot{}) {
		t.Fatalf("nil stats snapshot = %+v, want zero", snap)
	}
}

func TestAcceptRate(t *testing.T) {
	if _, ok := (SamplerSnapshot{}).AcceptRate(); ok {
		t.Fatal("zero-attempt snapshot reported an accept rate")
	}
	rate, ok := (SamplerSnapshot{RejectionAttempts: 8, RejectionAccepts: 2}).AcceptRate()
	if !ok || rate != 0.25 {
		t.Fatalf("AcceptRate = %v, %v; want 0.25, true", rate, ok)
	}
}

func TestTrajectoryBounded(t *testing.T) {
	s := &SamplerStats{}
	for i := 0; i < 3*maxTrajectory; i++ {
		s.RecordTrajectory(i, 1/float64(i+1))
	}
	tr := s.Trajectory()
	if len(tr) != maxTrajectory {
		t.Fatalf("trajectory length %d, want %d", len(tr), maxTrajectory)
	}
	if tr[0].N != 0 {
		t.Fatalf("trajectory head %+v, want the first recorded point", tr[0])
	}
	// Trajectory recording stays on the called set: no parent propagation
	// (a per-operator epsilon curve summed across operators is meaningless).
	child := &SamplerStats{Parent: s}
	child.RecordTrajectory(99, 0.1)
	if len(s.Trajectory()) != maxTrajectory {
		t.Fatal("child trajectory point leaked into parent")
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 8, 100} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count %d, want 6", snap.Count)
	}
	if snap.Sum != 114 {
		t.Fatalf("sum %g, want 114", snap.Sum)
	}
	// Cumulative per upper bound: le=1 holds {0.5, 1}, le=2 adds {1.5},
	// le=4 adds {3}; +Inf (snap.Count) adds {8, 100}.
	want := []int64{2, 3, 4}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket le=%g count %d, want %d", snap.Bounds[i], snap.Counts[i], w)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != 8000 {
		t.Fatalf("count %d, want 8000", snap.Count)
	}
	var wantSum float64
	for i := 0; i < 1000; i++ {
		wantSum += float64(i % 200)
	}
	if snap.Sum != 8*wantSum {
		t.Fatalf("sum %g, want %g", snap.Sum, 8*wantSum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 4, 3)
	want := []float64{1, 4, 16}
	if len(b) != len(want) {
		t.Fatalf("bounds %v, want %v", b, want)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds %v, want %v", b, want)
		}
	}
}

func TestQueryStatsSpans(t *testing.T) {
	q := NewQueryStats("SELECT 1", nil)
	endPlan := q.StartPhase("plan")
	endRewrite := q.StartPhase("rewrite")
	endRewrite()
	endPlan()
	q.AddPhase("parse", 3*time.Millisecond)

	phases := q.Phases()
	if len(phases) != 3 {
		t.Fatalf("phases %v, want 3 spans", phases)
	}
	// Spans land in completion order; depth records nesting at start time.
	if phases[0].Name != "rewrite" || phases[0].Depth != 1 {
		t.Fatalf("first completed span %+v, want rewrite at depth 1", phases[0])
	}
	if phases[1].Name != "plan" || phases[1].Depth != 0 {
		t.Fatalf("second completed span %+v, want plan at depth 0", phases[1])
	}
	if phases[2].Name != "parse" || phases[2].Duration != 3*time.Millisecond {
		t.Fatalf("third span %+v, want pre-measured parse", phases[2])
	}
	if phases[1].Duration < phases[0].Duration {
		t.Fatal("outer span shorter than the span it encloses")
	}
}

func TestQueryStatsNilSafe(t *testing.T) {
	var q *QueryStats
	q.StartPhase("plan")() // the returned closer must also be callable
	q.AddPhase("parse", time.Millisecond)
	if p := q.Phases(); p != nil {
		t.Fatalf("nil query stats phases = %v, want nil", p)
	}
}

func TestEngineStatsLastQuery(t *testing.T) {
	var es EngineStats
	if es.LastQuery() != nil || es.Queries() != 0 {
		t.Fatal("fresh engine stats not empty")
	}
	q1 := NewQueryStats("one", &es.Sampler)
	q2 := NewQueryStats("two", &es.Sampler)
	es.ObserveQuery(q1)
	es.ObserveQuery(q2)
	if es.Queries() != 2 {
		t.Fatalf("queries %d, want 2", es.Queries())
	}
	if got := es.LastQuery(); got != q2 {
		t.Fatalf("last query %v, want the most recent", got)
	}
	// Query-scope counters roll up into the engine scope via the chain.
	q2.Sampler.AddSamples(7)
	if es.Sampler.Snapshot().Samples != 7 {
		t.Fatal("query samples did not roll up to the engine scope")
	}
}
