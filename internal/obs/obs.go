// Package obs is PIP's zero-dependency telemetry core: atomic counter sets
// for the sampling engine, fixed-bucket histograms for latencies and sizes,
// and span-style phase timers for query tracing.
//
// The package is deliberately dumb about what it measures — it only counts
// and times. The sampler threads a SamplerStats through its batch barriers
// (internal/sampler), the SQL layer attaches a QueryStats per statement
// (internal/sql), the engine keeps one EngineStats per catalog
// (internal/core, surfaced by SHOW STATS), and the network server renders
// Histogram snapshots as Prometheus exposition (internal/server).
//
// Determinism contract: nothing in this package draws randomness or
// influences control flow of its callers. Every recording method on a nil
// receiver is a no-op, so instrumented code paths read identically with
// telemetry on or off, and all sampler-side recording happens at batch
// barriers on the merging goroutine (plus atomic adds on the sequential
// Metropolis path) — stats collection never perturbs PRNG state or batch
// merge order.
package obs

import (
	"sync"
	"sync/atomic"
)

// SamplerStats is an atomic counter set over the sampling engine's work:
// samples drawn, batches dispatched, rounds run, rejection and Metropolis
// accounting, and the exact/closed-form fast-path hit counters. Counter
// sets chain through Parent — an operator-level set parents a query-level
// set which parents the engine-wide set — so one Add call feeds every
// enclosing scope. All methods are safe for concurrent use and are no-ops
// on a nil receiver.
type SamplerStats struct {
	// Parent, when non-nil, receives every add this set receives (set once
	// at construction, never mutated afterwards).
	Parent *SamplerStats

	samples     atomic.Int64
	batches     atomic.Int64
	rounds      atomic.Int64
	rejAttempts atomic.Int64
	rejAccepts  atomic.Int64
	proposals   atomic.Int64
	mAccepts    atomic.Int64
	escalations atomic.Int64
	exactCDF    atomic.Int64
	closedForm  atomic.Int64

	mu   sync.Mutex
	traj []TrajectoryPoint
}

// TrajectoryPoint is one barrier observation of adaptive (epsilon, delta)
// stopping: after N accepted samples the confidence half-width stood at
// RelWidth relative to the running mean. The sequence of points is the
// epsilon-trajectory of a query's convergence.
type TrajectoryPoint struct {
	// N is the merged accepted-sample count at the barrier.
	N int
	// RelWidth is the z-scaled relative confidence half-width the stopping
	// rule compared against Delta (0 when the mean is zero).
	RelWidth float64
}

// maxTrajectory bounds the recorded epsilon-trajectory; adaptive runs
// double their round sizes, so real trajectories are far shorter.
const maxTrajectory = 64

// AddSamples counts n accepted samples (merged at a round barrier).
func (s *SamplerStats) AddSamples(n int64) {
	for p := s; p != nil; p = p.Parent {
		p.samples.Add(n)
	}
}

// AddBatches counts n dispatched sample batches.
func (s *SamplerStats) AddBatches(n int64) {
	for p := s; p != nil; p = p.Parent {
		p.batches.Add(n)
	}
}

// AddRound counts one completed engine round (a barrier merge).
func (s *SamplerStats) AddRound() {
	for p := s; p != nil; p = p.Parent {
		p.rounds.Add(1)
	}
}

// AddRejection counts rejection-sampler work: attempts candidate draws of
// which accepts satisfied their constraint group.
func (s *SamplerStats) AddRejection(attempts, accepts int64) {
	for p := s; p != nil; p = p.Parent {
		p.rejAttempts.Add(attempts)
		p.rejAccepts.Add(accepts)
	}
}

// AddMetropolis counts one random-walk proposal; accepted marks it taken.
func (s *SamplerStats) AddMetropolis(accepted bool) {
	for p := s; p != nil; p = p.Parent {
		p.proposals.Add(1)
		if accepted {
			p.mAccepts.Add(1)
		}
	}
}

// AddEscalation counts one group escalating from rejection sampling to the
// Metropolis random walk.
func (s *SamplerStats) AddEscalation() {
	for p := s; p != nil; p = p.Parent {
		p.escalations.Add(1)
	}
}

// AddExactCDFHit counts one probability integrated exactly via a CDF
// instead of sampled.
func (s *SamplerStats) AddExactCDFHit() {
	for p := s; p != nil; p = p.Parent {
		p.exactCDF.Add(1)
	}
}

// AddClosedFormHit counts one expectation answered by a closed-form mean
// with no sampling at all.
func (s *SamplerStats) AddClosedFormHit() {
	for p := s; p != nil; p = p.Parent {
		p.closedForm.Add(1)
	}
}

// RecordTrajectory appends one adaptive-stopping barrier observation. Only
// the set it is called on records the point (the trajectory is a per-query
// shape, not an aggregate), and recording stops at a fixed bound.
func (s *SamplerStats) RecordTrajectory(n int, relWidth float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if len(s.traj) < maxTrajectory {
		s.traj = append(s.traj, TrajectoryPoint{N: n, RelWidth: relWidth})
	}
	s.mu.Unlock()
}

// Trajectory returns a copy of the recorded epsilon-trajectory.
func (s *SamplerStats) Trajectory() []TrajectoryPoint {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TrajectoryPoint(nil), s.traj...)
}

// SamplerSnapshot is a point-in-time copy of a SamplerStats counter set.
type SamplerSnapshot struct {
	// Samples is the number of accepted samples merged at round barriers.
	Samples int64
	// Batches is the number of sample batches dispatched to the pool.
	Batches int64
	// Rounds is the number of barrier-delimited engine rounds.
	Rounds int64
	// RejectionAttempts and RejectionAccepts are the rejection sampler's
	// candidate draw and acceptance counts.
	RejectionAttempts int64
	RejectionAccepts  int64
	// MetropolisProposals and MetropolisAccepts count random-walk steps.
	MetropolisProposals int64
	MetropolisAccepts   int64
	// Escalations counts groups that switched to the Metropolis walk.
	Escalations int64
	// ExactCDFHits counts probabilities integrated exactly via CDFs.
	ExactCDFHits int64
	// ClosedFormHits counts expectations answered by closed-form means.
	ClosedFormHits int64
}

// Snapshot copies the current counter values (zero value on nil).
func (s *SamplerStats) Snapshot() SamplerSnapshot {
	if s == nil {
		return SamplerSnapshot{}
	}
	return SamplerSnapshot{
		Samples:             s.samples.Load(),
		Batches:             s.batches.Load(),
		Rounds:              s.rounds.Load(),
		RejectionAttempts:   s.rejAttempts.Load(),
		RejectionAccepts:    s.rejAccepts.Load(),
		MetropolisProposals: s.proposals.Load(),
		MetropolisAccepts:   s.mAccepts.Load(),
		Escalations:         s.escalations.Load(),
		ExactCDFHits:        s.exactCDF.Load(),
		ClosedFormHits:      s.closedForm.Load(),
	}
}

// AcceptRate returns the rejection sampler's acceptance fraction, and
// whether any attempts were made at all.
func (ss SamplerSnapshot) AcceptRate() (float64, bool) {
	if ss.RejectionAttempts == 0 {
		return 0, false
	}
	return float64(ss.RejectionAccepts) / float64(ss.RejectionAttempts), true
}
