package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// PhaseSpan is one timed phase of a query's life (parse, plan, rewrite,
// execute). Depth records span nesting: a span started while another is
// open sits one level deeper than its enclosing span.
type PhaseSpan struct {
	// Name is the phase name ("parse", "plan", "rewrite", "execute").
	Name string
	// Depth is the nesting level, 0 for top-level phases.
	Depth int
	// Duration is the phase's wall time.
	Duration time.Duration
}

// QueryStats collects one statement's telemetry: the statement text, a
// span list of its timed phases, and a SamplerStats scope that aggregates
// every sampler counter the statement's operators touch. Methods are
// no-ops on a nil receiver, so unobserved paths cost nothing.
type QueryStats struct {
	// Query is the statement text being traced.
	Query string
	// Sampler is the statement-scope counter set; operator-level sets
	// parent it, and it parents the engine-wide set.
	Sampler *SamplerStats

	mu     sync.Mutex
	phases []PhaseSpan
	depth  int
}

// NewQueryStats starts a trace for one statement, chaining its sampler
// scope to engine (which may be nil).
func NewQueryStats(query string, engine *SamplerStats) *QueryStats {
	return &QueryStats{Query: query, Sampler: &SamplerStats{Parent: engine}}
}

// StartPhase opens a timed phase span and returns the func that closes it.
// Spans opened while another is open record a greater Depth; the returned
// close func must be called on the same goroutine flow (spans are not
// concurrent — query phases are sequential by construction).
func (q *QueryStats) StartPhase(name string) func() {
	if q == nil {
		return func() {}
	}
	q.mu.Lock()
	depth := q.depth
	q.depth++
	q.mu.Unlock()
	start := time.Now()
	return func() {
		d := time.Since(start)
		q.mu.Lock()
		q.depth--
		q.phases = append(q.phases, PhaseSpan{Name: name, Depth: depth, Duration: d})
		q.mu.Unlock()
	}
}

// AddPhase records an already-measured phase at top level, for phases
// timed outside the span mechanism (e.g. parse time captured at Prepare).
func (q *QueryStats) AddPhase(name string, d time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.phases = append(q.phases, PhaseSpan{Name: name, Duration: d})
	q.mu.Unlock()
}

// Phases returns a copy of the recorded spans in completion order (nested
// spans complete before — and therefore precede — their enclosing span).
func (q *QueryStats) Phases() []PhaseSpan {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]PhaseSpan(nil), q.phases...)
}

// EngineStats is the engine-wide telemetry root shared by every session of
// a database: the global sampler counter set, the count of statements
// traced, and the most recent query trace.
type EngineStats struct {
	// Sampler is the engine-wide counter set; every query scope parents it.
	Sampler SamplerStats

	queries atomic.Int64
	mu      sync.Mutex
	last    *QueryStats
}

// ObserveQuery registers a completed (or executing) statement trace as the
// engine's last query and bumps the traced-statement count.
func (e *EngineStats) ObserveQuery(q *QueryStats) {
	if e == nil || q == nil {
		return
	}
	e.queries.Add(1)
	e.mu.Lock()
	e.last = q
	e.mu.Unlock()
}

// LastQuery returns the most recently observed statement trace (nil if no
// statement has been traced yet).
func (e *EngineStats) LastQuery() *QueryStats {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Queries returns the number of statement traces observed.
func (e *EngineStats) Queries() int64 {
	if e == nil {
		return 0
	}
	return e.queries.Load()
}
