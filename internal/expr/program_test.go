package expr

import (
	"math"
	"testing"

	"pip/internal/dist"
	"pip/internal/prng"
)

// progVars builds a small pool of variables for program tests.
func progVars(n int) []*Variable {
	vars := make([]*Variable, n)
	for i := range vars {
		vars[i] = &Variable{
			Key:  VarKey{ID: uint64(i + 1), Subscript: i % 2},
			Dist: dist.MustInstance(dist.Normal{}, 0, 1),
		}
	}
	return vars
}

// randTree generates a deterministic pseudorandom expression tree over the
// variable pool: all four operators, negation, plain and special-value
// constants (NaN, ±Inf, ±0) and repeated variables.
func randTree(r *prng.Rand, vars []*Variable, depth int) Expr {
	if depth <= 0 || r.Uint64()%4 == 0 {
		switch r.Uint64() % 8 {
		case 0:
			return Const(math.NaN())
		case 1:
			return Const(math.Inf(1))
		case 2:
			return Const(math.Inf(-1))
		case 3:
			return Const(math.Copysign(0, -1))
		case 4, 5:
			return Const(r.Float64()*200 - 100)
		default:
			return NewVar(vars[int(r.Uint64()%uint64(len(vars)))])
		}
	}
	if r.Uint64()%8 == 0 {
		return Neg{X: randTree(r, vars, depth-1)}
	}
	return Bin{
		Op:    Op(r.Uint64() % 4),
		Left:  randTree(r, vars, depth-1),
		Right: randTree(r, vars, depth-1),
	}
}

// randAssignment draws values for the pool, leaving some variables
// deliberately unassigned (Var.Eval reports those as NaN; the compiled
// Gather must agree).
func randAssignment(r *prng.Rand, vars []*Variable) Assignment {
	a := Assignment{}
	for _, v := range vars {
		switch r.Uint64() % 4 {
		case 0:
			// unassigned
		case 1:
			a[v.Key] = math.Inf(1)
		default:
			a[v.Key] = r.Float64()*20 - 10
		}
	}
	return a
}

// sameBits reports float equality at the bit level, except that any NaN
// matches any NaN: IEEE 754 leaves propagated-NaN payloads unspecified, so
// two compilations of the same expression may legally differ there.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// assertProgramMatchesTree compiles e and checks the scalar, assignment and
// batch evaluation paths all reproduce the tree walk bit-for-bit under every
// assignment in asns (one assignment per sample index for the batch path).
func assertProgramMatchesTree(t *testing.T, e Expr, asns []Assignment) {
	t.Helper()
	p, err := Compile(e)
	if err != nil {
		t.Fatalf("Compile(%s): %v", e, err)
	}
	n := len(asns)
	cols := make([][]float64, p.NumSlots())
	for s := range cols {
		cols[s] = make([]float64, n)
	}
	vals := make([]float64, p.NumSlots())
	stack := make([]float64, p.MaxStack())
	for i, a := range asns {
		want := e.Eval(a)
		if got := p.Eval(a); !sameBits(got, want) {
			t.Fatalf("%s: Eval %v (bits %x), tree %v (bits %x)",
				e, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		p.Gather(a, vals)
		if got := p.EvalSlots(vals, stack); !sameBits(got, want) {
			t.Fatalf("%s: EvalSlots %v, tree %v", e, got, want)
		}
		for s := range cols {
			cols[s][i] = vals[s]
		}
	}
	out := make([]float64, n)
	bstack := make([]float64, p.MaxStack()*n)
	p.EvalBatch(cols, n, out, bstack)
	for i, a := range asns {
		want := e.Eval(a)
		if !sameBits(out[i], want) {
			t.Fatalf("%s: EvalBatch[%d] %v, tree %v", e, i, out[i], want)
		}
	}
}

// TestCompileProgramProperty is the property-based differential test:
// hundreds of random trees (all operators, negation, NaN/±Inf/−0 literals,
// shared and unassigned variables), each checked across a batch of random
// assignments — compiled evaluation must equal the tree walk bit-for-bit at
// every sample index, on all three evaluation paths.
func TestCompileProgramProperty(t *testing.T) {
	vars := progVars(5)
	r := prng.New(0xC0FFEE)
	for iter := 0; iter < 300; iter++ {
		e := randTree(r, vars, 5)
		asns := make([]Assignment, 7)
		for i := range asns {
			asns[i] = randAssignment(r, vars)
		}
		assertProgramMatchesTree(t, e, asns)
	}
}

// TestCompileProgramFixed pins hand-picked shapes: constants only, a single
// variable, deep negation, division by zero, and an expression reusing one
// variable many times (one slot, many loads).
func TestCompileProgramFixed(t *testing.T) {
	vars := progVars(2)
	x, y := NewVar(vars[0]), NewVar(vars[1])
	cases := []Expr{
		Const(3.5),
		x,
		Neg{X: Neg{X: x}},
		Bin{OpDiv, x, Const(0)},
		Bin{OpDiv, Const(0), Const(0)},
		Bin{OpAdd, Bin{OpMul, x, x}, Bin{OpSub, x, y}},
		Bin{OpMul, Bin{OpAdd, x, Const(1)}, Neg{X: Bin{OpDiv, y, Const(3)}}},
	}
	asns := []Assignment{
		{},
		{vars[0].Key: 2, vars[1].Key: -7},
		{vars[0].Key: math.Inf(-1), vars[1].Key: 0},
	}
	for _, e := range cases {
		assertProgramMatchesTree(t, e, asns)
	}
}

// TestCompileSlotOrderDeterministic asserts the slot table is a pure
// function of the tree: slots follow first occurrence in postfix emission
// order, and recompilation reproduces them exactly.
func TestCompileSlotOrderDeterministic(t *testing.T) {
	vars := progVars(3)
	// y appears before x in evaluation order even though x has a lower id.
	e := Bin{OpAdd, Bin{OpMul, NewVar(vars[1]), NewVar(vars[0])}, NewVar(vars[2])}
	p1, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	want := []VarKey{vars[1].Key, vars[0].Key, vars[2].Key}
	if len(p1.Keys()) != len(want) {
		t.Fatalf("slots %v, want %v", p1.Keys(), want)
	}
	for i, k := range p1.Keys() {
		if k != want[i] {
			t.Fatalf("slot %d = %v, want %v", i, k, want[i])
		}
	}
	p2, err := Compile(e)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("recompilation diverged:\n%s\nvs\n%s", p1, p2)
	}
}

// TestCompileRejectsUnknown asserts unknown node and operator kinds are
// compile errors, never silent misevaluation.
func TestCompileRejectsUnknown(t *testing.T) {
	if _, err := Compile(unknownExpr{}); err == nil {
		t.Fatal("unknown node type compiled")
	}
	if _, err := Compile(Bin{Op: Op(99), Left: Const(1), Right: Const(2)}); err == nil {
		t.Fatal("unknown operator compiled")
	}
}

// unknownExpr is a foreign Expr implementation Compile must reject.
type unknownExpr struct{}

func (unknownExpr) Eval(Assignment) float64          { return 0 }
func (unknownExpr) CollectVars(map[VarKey]*Variable) {}
func (unknownExpr) Degree() int                      { return 0 }
func (unknownExpr) String() string                   { return "?" }

// decodeFuzzTree interprets fuzz bytes as tree-construction opcodes — a
// tiny stack machine so arbitrary inputs decode to arbitrary tree shapes.
func decodeFuzzTree(data []byte, vars []*Variable) Expr {
	var stack []Expr
	pop := func() Expr {
		if len(stack) == 0 {
			return Const(1)
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for i := 0; i < len(data) && len(stack) < 64; i++ {
		b := data[i]
		switch b % 10 {
		case 0, 1:
			stack = append(stack, Const(float64(int8(b))/4))
		case 2:
			special := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)}
			stack = append(stack, Const(special[int(b/10)%len(special)]))
		case 3, 4:
			stack = append(stack, NewVar(vars[int(b)%len(vars)]))
		case 5, 6, 7, 8:
			r, l := pop(), pop()
			stack = append(stack, Bin{Op: Op(b % 4), Left: l, Right: r})
		case 9:
			stack = append(stack, Neg{X: pop()})
		}
	}
	e := pop()
	for len(stack) > 0 {
		e = Bin{Op: OpAdd, Left: pop(), Right: e}
	}
	return e
}

// FuzzCompileProgram decodes arbitrary bytes into an expression tree plus an
// assignment and requires compiled evaluation ≡ tree-walk evaluation,
// bit-for-bit, on the scalar and batch paths alike.
func FuzzCompileProgram(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 5})
	f.Add([]byte{2, 12, 22, 32, 3, 9, 6, 13, 7, 8})
	f.Add([]byte{0, 3, 5, 0, 3, 6, 7, 9, 8, 3, 3, 5, 2, 8})
	vars := progVars(4)
	f.Fuzz(func(t *testing.T, data []byte) {
		e := decodeFuzzTree(data, vars)
		r := prng.New(prng.MixKey(uint64(len(data)) + 1))
		asns := make([]Assignment, 5)
		for i := range asns {
			asns[i] = randAssignment(r, vars)
		}
		assertProgramMatchesTree(t, e, asns)
	})
}
