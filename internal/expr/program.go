// Compiled expression programs: a symbolic expression tree flattened once
// into postfix instruction arrays (opcode + operand index, constant pool,
// variable slot table) and evaluated with an explicit value stack — no AST
// walk, no interface dispatch, no per-operation allocation. EvalBatch runs
// the program across a whole batch of sample worlds in tight loops over
// contiguous scratch (operations outer, samples inner).
//
// Bit-identity: compilation emits instructions in exactly the evaluation
// order of the recursive Eval walk (left subtree, right subtree, operator),
// so for every sample the program performs the identical sequence of
// float64 operations the tree walk performs. There are no cross-sample
// reductions inside EvalBatch, so batch evaluation is bit-identical to
// per-sample evaluation at every batch size. The one caveat is NaN
// payloads: IEEE 754 leaves the payload of a propagated NaN unspecified
// and Go may commute operands of + and *, so two compilations of the same
// expression can surface different NaN bit patterns. Every NaN is treated
// as equal to every other NaN; non-NaN results are exact to the bit.

package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// progOp is one opcode of a compiled program.
type progOp uint8

const (
	// progConst pushes consts[arg].
	progConst progOp = iota
	// progVar pushes the value of variable slot arg.
	progVar
	// progAdd/progSub/progMul/progDiv pop two operands (right on top) and
	// push the result.
	progAdd
	progSub
	progMul
	progDiv
	// progNeg negates the top of the stack in place.
	progNeg
)

// Program is a compiled expression: flat postfix instruction arrays plus a
// constant pool and a variable slot table. Programs are immutable after
// Compile and safe for concurrent use; evaluation scratch is caller-owned.
type Program struct {
	ops    []progOp
	args   []int32 // constant-pool or slot index per op (0 for arithmetic)
	consts []float64
	// keys maps variable slots to variable keys. Slot order is the first
	// occurrence of each variable in postfix emission order — a pure
	// function of the tree shape, never of map iteration.
	keys     []VarKey
	slots    map[VarKey]int32
	maxStack int
}

// Compile flattens e into a postfix program. It returns an error for
// expression node types it does not recognize (callers fall back to the
// tree walk) so a future Expr implementation can never be silently
// mis-evaluated.
func Compile(e Expr) (*Program, error) {
	p := &Program{slots: map[VarKey]int32{}}
	depth := 0
	if err := p.compile(e, &depth); err != nil {
		return nil, err
	}
	return p, nil
}

// compile emits e in postorder, tracking the running stack depth.
func (p *Program) compile(e Expr, depth *int) error {
	switch t := e.(type) {
	case Const:
		p.emitPush(progConst, p.addConst(float64(t)), depth)
	case Var:
		p.emitPush(progVar, p.slot(t.V.Key), depth)
	case Bin:
		var op progOp
		switch t.Op {
		case OpAdd:
			op = progAdd
		case OpSub:
			op = progSub
		case OpMul:
			op = progMul
		case OpDiv:
			op = progDiv
		default:
			return fmt.Errorf("expr: cannot compile operator %v", t.Op)
		}
		if err := p.compile(t.Left, depth); err != nil {
			return err
		}
		if err := p.compile(t.Right, depth); err != nil {
			return err
		}
		p.ops = append(p.ops, op)
		p.args = append(p.args, 0)
		*depth--
	case Neg:
		if err := p.compile(t.X, depth); err != nil {
			return err
		}
		p.ops = append(p.ops, progNeg)
		p.args = append(p.args, 0)
	default:
		return fmt.Errorf("expr: cannot compile %T", e)
	}
	return nil
}

// emitPush appends a push instruction and advances the stack-depth bound.
func (p *Program) emitPush(op progOp, arg int32, depth *int) {
	p.ops = append(p.ops, op)
	p.args = append(p.args, arg)
	*depth++
	if *depth > p.maxStack {
		p.maxStack = *depth
	}
}

// addConst interns a constant, reusing an existing pool entry with the same
// bit pattern (NaNs with distinct payloads stay distinct).
func (p *Program) addConst(v float64) int32 {
	bits := math.Float64bits(v)
	for i, c := range p.consts {
		if math.Float64bits(c) == bits {
			return int32(i)
		}
	}
	p.consts = append(p.consts, v)
	return int32(len(p.consts) - 1)
}

// slot returns the variable slot for k, assigning the next slot on first
// occurrence (postfix emission order — deterministic by construction).
func (p *Program) slot(k VarKey) int32 {
	if s, ok := p.slots[k]; ok {
		return s
	}
	s := int32(len(p.keys))
	p.keys = append(p.keys, k)
	p.slots[k] = s
	return s
}

// NumSlots returns the number of distinct variable slots.
func (p *Program) NumSlots() int { return len(p.keys) }

// MaxStack returns the stack depth EvalSlots/EvalBatch scratch must hold.
func (p *Program) MaxStack() int { return p.maxStack }

// Keys returns the slot-ordered variable keys. The slice is shared: callers
// must treat it as read-only.
func (p *Program) Keys() []VarKey { return p.keys }

// Gather copies the values of the program's variables out of an assignment
// into slot order (unassigned variables become NaN, exactly as Var.Eval
// reports them). vals must have NumSlots capacity.
func (p *Program) Gather(a Assignment, vals []float64) {
	for s, k := range p.keys {
		if v, ok := a[k]; ok {
			vals[s] = v
		} else {
			vals[s] = math.NaN()
		}
	}
}

// EvalSlots evaluates the program over slot-ordered variable values. stack
// must have at least MaxStack elements; it is scratch, overwritten freely.
// The result is bit-identical to the source tree's Eval under the gathered
// assignment.
func (p *Program) EvalSlots(vals, stack []float64) float64 {
	sp := 0
	for i, op := range p.ops {
		switch op {
		case progConst:
			stack[sp] = p.consts[p.args[i]]
			sp++
		case progVar:
			stack[sp] = vals[p.args[i]]
			sp++
		case progAdd:
			stack[sp-2] += stack[sp-1]
			sp--
		case progSub:
			stack[sp-2] -= stack[sp-1]
			sp--
		case progMul:
			stack[sp-2] *= stack[sp-1]
			sp--
		case progDiv:
			stack[sp-2] /= stack[sp-1]
			sp--
		case progNeg:
			stack[sp-1] = -stack[sp-1]
		}
	}
	return stack[0]
}

// Eval evaluates the program under an assignment (convenience path for
// differential tests; hot paths gather once and use EvalSlots/EvalBatch).
func (p *Program) Eval(a Assignment) float64 {
	vals := make([]float64, len(p.keys))
	stack := make([]float64, p.maxStack)
	p.Gather(a, vals)
	return p.EvalSlots(vals, stack)
}

// EvalBatch evaluates the program for samples [0, n) at once: cols[slot][i]
// holds the slot's value in sample i, out[i] receives the result for sample
// i, and stack is flat scratch of at least MaxStack()*n elements (stack
// level L for sample i lives at stack[L*n+i]). The instruction loop is
// operations-outer, samples-inner; per sample the operation sequence is
// identical to EvalSlots, so results are bit-identical to per-sample
// evaluation.
func (p *Program) EvalBatch(cols [][]float64, n int, out, stack []float64) {
	if n <= 0 {
		return
	}
	sp := 0
	for i, op := range p.ops {
		switch op {
		case progConst:
			c := p.consts[p.args[i]]
			dst := stack[sp*n : sp*n+n]
			for j := range dst {
				dst[j] = c
			}
			sp++
		case progVar:
			copy(stack[sp*n:sp*n+n], cols[p.args[i]][:n])
			sp++
		case progAdd:
			a := stack[(sp-2)*n : (sp-2)*n+n]
			b := stack[(sp-1)*n : (sp-1)*n+n]
			for j, bv := range b {
				a[j] += bv
			}
			sp--
		case progSub:
			a := stack[(sp-2)*n : (sp-2)*n+n]
			b := stack[(sp-1)*n : (sp-1)*n+n]
			for j, bv := range b {
				a[j] -= bv
			}
			sp--
		case progMul:
			a := stack[(sp-2)*n : (sp-2)*n+n]
			b := stack[(sp-1)*n : (sp-1)*n+n]
			for j, bv := range b {
				a[j] *= bv
			}
			sp--
		case progDiv:
			a := stack[(sp-2)*n : (sp-2)*n+n]
			b := stack[(sp-1)*n : (sp-1)*n+n]
			for j, bv := range b {
				a[j] /= bv
			}
			sp--
		case progNeg:
			a := stack[(sp-1)*n : (sp-1)*n+n]
			for j := range a {
				a[j] = -a[j]
			}
		}
	}
	copy(out[:n], stack[:n])
}

// String renders the program as one instruction per line — a disassembly
// for tests and debugging.
func (p *Program) String() string {
	var b strings.Builder
	for i, op := range p.ops {
		if i > 0 {
			b.WriteByte('\n')
		}
		switch op {
		case progConst:
			b.WriteString("const " + strconv.FormatFloat(p.consts[p.args[i]], 'g', -1, 64))
		case progVar:
			b.WriteString("var " + p.keys[p.args[i]].String())
		case progAdd:
			b.WriteString("add")
		case progSub:
			b.WriteString("sub")
		case progMul:
			b.WriteString("mul")
		case progDiv:
			b.WriteString("div")
		case progNeg:
			b.WriteString("neg")
		}
	}
	return b.String()
}
