// Package expr implements PIP's equation datatype (paper §III-B): flattened
// parse trees of arithmetic expressions whose leaves are random variables or
// constants. Because an equation itself describes a (composite) random
// variable, equations and random variables are used interchangeably
// throughout the system.
//
// The package also provides the linear normal form extraction used by the
// consistency checker's tighten1 routine, variable collection for
// independence partitioning, and constant folding.
package expr

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pip/internal/dist"
	"pip/internal/prng"
)

// VarKey identifies one scalar random variable: the unique variable id plus
// a subscript selecting a component of a multivariate distribution
// (subscript 0 for univariate variables).
type VarKey struct {
	ID        uint64
	Subscript int
}

// String renders the key as X<id> or X<id>[sub].
func (k VarKey) String() string {
	if k.Subscript == 0 {
		return fmt.Sprintf("X%d", k.ID)
	}
	return fmt.Sprintf("X%d[%d]", k.ID, k.Subscript)
}

// Less orders keys by (ID, Subscript) for deterministic iteration.
func (k VarKey) Less(o VarKey) bool {
	if k.ID != o.ID {
		return k.ID < o.ID
	}
	return k.Subscript < o.Subscript
}

// Variable is a scalar random variable: a unique identifier, a subscript
// (for multivariate distributions) and a parametrized distribution instance
// (paper §III-B). The same Variable value may appear at many points in a
// database; the identifier guarantees the sampling process generates
// consistent values within a given sample.
type Variable struct {
	Key  VarKey
	Dist dist.Instance
	// Name is an optional human-readable label used by String output;
	// it has no semantic effect.
	Name string
}

// String renders the variable's label (or key) for display.
func (v *Variable) String() string {
	if v.Name != "" {
		if v.Key.Subscript != 0 {
			return fmt.Sprintf("%s[%d]", v.Name, v.Key.Subscript)
		}
		return v.Name
	}
	return v.Key.String()
}

// Assignment maps scalar variables to concrete values; it identifies one
// possible world (restricted to the variables of interest).
type Assignment map[VarKey]float64

// SampleVariable draws a value for v that is a pure function of
// (worldSeed, sampleIdx, v.Key): the variable id and subscript are part of
// the PRNG seed, so every occurrence of the variable sees the same value.
// Multivariate components are drawn jointly from the seed of subscript 0 so
// correlations survive.
func SampleVariable(v *Variable, worldSeed, sampleIdx uint64) float64 {
	if mv, ok := v.Dist.Class.(dist.Multivariater); ok {
		r := prng.NewKeyed(worldSeed, sampleIdx, v.Key.ID, 0)
		vec := mv.GenerateJoint(v.Dist.Params, r)
		if v.Key.Subscript < 0 || v.Key.Subscript >= len(vec) {
			return math.NaN()
		}
		return vec[v.Key.Subscript]
	}
	r := prng.NewKeyed(worldSeed, sampleIdx, v.Key.ID, uint64(v.Key.Subscript))
	return v.Dist.Generate(r)
}

// Op enumerates the arithmetic operators of the equation datatype.
type Op int

// Arithmetic operators. The implementation is limited to simple algebraic
// operators so that all variable expressions are polynomial (paper §III-C),
// which keeps consistency checking tractable; Div is permitted but marks the
// expression non-polynomial when a variable occurs in the divisor.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
)

// String renders the operator symbol.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	default:
		return "?"
	}
}

// Expr is a node of an equation tree. Implementations are Const, Var, Bin
// and Neg. Expr values are immutable after construction and safe for
// concurrent use.
type Expr interface {
	// Eval evaluates the expression under the given variable assignment.
	// Unassigned variables evaluate to NaN, which poisons the result.
	Eval(a Assignment) float64
	// CollectVars adds every variable occurring in the expression to set,
	// keyed by VarKey.
	CollectVars(set map[VarKey]*Variable)
	// Degree returns the polynomial degree of the expression in its random
	// variables, or -1 if the expression is not polynomial (division by an
	// expression containing variables).
	Degree() int
	// String renders the expression in infix form.
	String() string
}

// Const is a constant leaf.
type Const float64

// Eval implements Expr.
func (c Const) Eval(Assignment) float64 { return float64(c) }

// CollectVars implements Expr.
func (c Const) CollectVars(map[VarKey]*Variable) {}

// Degree implements Expr.
func (c Const) Degree() int { return 0 }

// String implements Expr.
func (c Const) String() string {
	return strings.TrimSuffix(fmt.Sprintf("%g", float64(c)), ".0")
}

// Var is a random-variable leaf.
type Var struct {
	V *Variable
}

// NewVar wraps a variable as an expression leaf.
func NewVar(v *Variable) Var { return Var{V: v} }

// Eval implements Expr.
func (v Var) Eval(a Assignment) float64 {
	if val, ok := a[v.V.Key]; ok {
		return val
	}
	return math.NaN()
}

// CollectVars implements Expr.
func (v Var) CollectVars(set map[VarKey]*Variable) { set[v.V.Key] = v.V }

// Degree implements Expr.
func (v Var) Degree() int { return 1 }

// String implements Expr.
func (v Var) String() string { return v.V.String() }

// Bin is a binary arithmetic node.
type Bin struct {
	Op          Op
	Left, Right Expr
}

// Eval implements Expr.
func (b Bin) Eval(a Assignment) float64 {
	l := b.Left.Eval(a)
	r := b.Right.Eval(a)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	case OpDiv:
		return l / r
	default:
		return math.NaN()
	}
}

// CollectVars implements Expr.
func (b Bin) CollectVars(set map[VarKey]*Variable) {
	b.Left.CollectVars(set)
	b.Right.CollectVars(set)
}

// Degree implements Expr.
func (b Bin) Degree() int {
	l, r := b.Left.Degree(), b.Right.Degree()
	if l < 0 || r < 0 {
		return -1
	}
	switch b.Op {
	case OpAdd, OpSub:
		return max(l, r)
	case OpMul:
		return l + r
	case OpDiv:
		if r > 0 {
			return -1 // variable in divisor: not polynomial
		}
		return l
	default:
		return -1
	}
}

// String implements Expr.
func (b Bin) String() string {
	return "(" + b.Left.String() + " " + b.Op.String() + " " + b.Right.String() + ")"
}

// Neg is arithmetic negation.
type Neg struct {
	X Expr
}

// Eval implements Expr.
func (n Neg) Eval(a Assignment) float64 { return -n.X.Eval(a) }

// CollectVars implements Expr.
func (n Neg) CollectVars(set map[VarKey]*Variable) { n.X.CollectVars(set) }

// Degree implements Expr.
func (n Neg) Degree() int { return n.X.Degree() }

// String implements Expr.
func (n Neg) String() string { return "-" + n.X.String() }

// Add returns l + r with constant folding.
func Add(l, r Expr) Expr { return fold(Bin{OpAdd, l, r}) }

// Sub returns l - r with constant folding.
func Sub(l, r Expr) Expr { return fold(Bin{OpSub, l, r}) }

// Mul returns l * r with constant folding.
func Mul(l, r Expr) Expr { return fold(Bin{OpMul, l, r}) }

// Div returns l / r with constant folding.
func Div(l, r Expr) Expr { return fold(Bin{OpDiv, l, r}) }

// Negate returns -x with constant folding.
func Negate(x Expr) Expr {
	if c, ok := x.(Const); ok {
		return Const(-c)
	}
	return Neg{x}
}

// fold applies local constant folding and identity simplifications.
func fold(b Bin) Expr {
	lc, lok := b.Left.(Const)
	rc, rok := b.Right.(Const)
	if lok && rok {
		return Const(b.Eval(nil))
	}
	switch b.Op {
	case OpAdd:
		if lok && lc == 0 {
			return b.Right
		}
		if rok && rc == 0 {
			return b.Left
		}
	case OpSub:
		if rok && rc == 0 {
			return b.Left
		}
	case OpMul:
		if lok && lc == 1 {
			return b.Right
		}
		if rok && rc == 1 {
			return b.Left
		}
		if (lok && lc == 0) || (rok && rc == 0) {
			return Const(0)
		}
	case OpDiv:
		if rok && rc == 1 {
			return b.Left
		}
	}
	return b
}

// Vars returns the sorted variable keys of e along with a lookup map.
func Vars(e Expr) ([]VarKey, map[VarKey]*Variable) {
	set := map[VarKey]*Variable{}
	e.CollectVars(set)
	keys := make([]VarKey, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys, set
}

// IsDeterministic reports whether e contains no random variables.
func IsDeterministic(e Expr) bool {
	set := map[VarKey]*Variable{}
	e.CollectVars(set)
	return len(set) == 0
}

// LinearForm is an expression in the normal form
// c0 + sum_i coeff_i * X_i used by tighten1 (Algorithm 3.2): a constant term
// plus one coefficient per scalar variable.
type LinearForm struct {
	Constant float64
	Coeffs   map[VarKey]float64
	Vars     map[VarKey]*Variable
}

// Linearize extracts the linear normal form of e. ok is false if e is not
// linear in its random variables (degree > 1 or non-polynomial).
func Linearize(e Expr) (LinearForm, bool) {
	lf := LinearForm{Coeffs: map[VarKey]float64{}, Vars: map[VarKey]*Variable{}}
	if !linearize(e, 1, &lf) {
		return LinearForm{}, false
	}
	// Drop zero coefficients introduced by cancellation.
	for k, c := range lf.Coeffs {
		if c == 0 {
			delete(lf.Coeffs, k)
			delete(lf.Vars, k)
		}
	}
	return lf, true
}

func linearize(e Expr, scale float64, lf *LinearForm) bool {
	switch t := e.(type) {
	case Const:
		lf.Constant += scale * float64(t)
		return true
	case Var:
		lf.Coeffs[t.V.Key] += scale
		lf.Vars[t.V.Key] = t.V
		return true
	case Neg:
		return linearize(t.X, -scale, lf)
	case Bin:
		switch t.Op {
		case OpAdd:
			return linearize(t.Left, scale, lf) && linearize(t.Right, scale, lf)
		case OpSub:
			return linearize(t.Left, scale, lf) && linearize(t.Right, -scale, lf)
		case OpMul:
			if IsDeterministic(t.Left) {
				return linearize(t.Right, scale*t.Left.Eval(nil), lf)
			}
			if IsDeterministic(t.Right) {
				return linearize(t.Left, scale*t.Right.Eval(nil), lf)
			}
			return false
		case OpDiv:
			if IsDeterministic(t.Right) {
				d := t.Right.Eval(nil)
				if d == 0 {
					return false
				}
				return linearize(t.Left, scale/d, lf)
			}
			return false
		}
	}
	return false
}

// SortedKeys returns the linear form's variable keys in deterministic order.
func (lf LinearForm) SortedKeys() []VarKey {
	keys := make([]VarKey, 0, len(lf.Coeffs))
	for k := range lf.Coeffs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
