package expr

import (
	"math"
	"testing"
	"testing/quick"

	"pip/internal/dist"
)

func testVar(id uint64) *Variable {
	return &Variable{
		Key:  VarKey{ID: id},
		Dist: dist.MustInstance(dist.Normal{}, 0, 1),
	}
}

func TestConstEval(t *testing.T) {
	if got := Const(3.5).Eval(nil); got != 3.5 {
		t.Fatalf("Const eval = %v", got)
	}
	if Const(1).Degree() != 0 {
		t.Fatal("const degree != 0")
	}
}

func TestVarEval(t *testing.T) {
	v := testVar(1)
	e := NewVar(v)
	asn := Assignment{v.Key: 7}
	if got := e.Eval(asn); got != 7 {
		t.Fatalf("var eval = %v", got)
	}
	if !math.IsNaN(e.Eval(Assignment{})) {
		t.Fatal("unassigned variable should evaluate to NaN")
	}
}

func TestArithmeticEval(t *testing.T) {
	x, y := testVar(1), testVar(2)
	asn := Assignment{x.Key: 6, y.Key: 3}
	cases := []struct {
		e    Expr
		want float64
	}{
		{Add(NewVar(x), NewVar(y)), 9},
		{Sub(NewVar(x), NewVar(y)), 3},
		{Mul(NewVar(x), NewVar(y)), 18},
		{Div(NewVar(x), NewVar(y)), 2},
		{Negate(NewVar(x)), -6},
		{Add(Mul(Const(2), NewVar(x)), Const(1)), 13},
	}
	for _, c := range cases {
		if got := c.e.Eval(asn); got != c.want {
			t.Fatalf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	if _, ok := Add(Const(2), Const(3)).(Const); !ok {
		t.Fatal("2+3 did not fold")
	}
	x := NewVar(testVar(1))
	if e := Add(x, Const(0)); e != Expr(x) {
		t.Fatalf("x+0 did not simplify: %s", e)
	}
	if e := Mul(x, Const(1)); e != Expr(x) {
		t.Fatalf("x*1 did not simplify: %s", e)
	}
	if c, ok := Mul(x, Const(0)).(Const); !ok || c != 0 {
		t.Fatal("x*0 did not fold to 0")
	}
	if c, ok := Negate(Const(4)).(Const); !ok || c != -4 {
		t.Fatal("-4 did not fold")
	}
}

func TestDegree(t *testing.T) {
	x, y := NewVar(testVar(1)), NewVar(testVar(2))
	cases := []struct {
		e    Expr
		want int
	}{
		{x, 1},
		{Add(x, y), 1},
		{Mul(x, y), 2},
		{Mul(Mul(x, x), x), 3},
		{Div(x, Const(2)), 1},
		{Div(Const(2), x), -1}, // variable in divisor: not polynomial
		{Div(Mul(x, y), y), -1},
	}
	for _, c := range cases {
		if got := c.e.Degree(); got != c.want {
			t.Fatalf("degree(%s) = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestCollectVars(t *testing.T) {
	x, y := testVar(1), testVar(2)
	e := Add(Mul(NewVar(x), NewVar(y)), NewVar(x))
	keys, vars := Vars(e)
	if len(keys) != 2 {
		t.Fatalf("got %d vars", len(keys))
	}
	if keys[0] != x.Key || keys[1] != y.Key {
		t.Fatalf("keys unsorted: %v", keys)
	}
	if vars[x.Key] != x {
		t.Fatal("variable pointer lost")
	}
}

func TestIsDeterministic(t *testing.T) {
	if !IsDeterministic(Add(Const(1), Const(2))) {
		t.Fatal("constant expression reported probabilistic")
	}
	if IsDeterministic(NewVar(testVar(1))) {
		t.Fatal("variable reported deterministic")
	}
}

func TestLinearize(t *testing.T) {
	x, y := testVar(1), testVar(2)
	// 2*x - 3*y + 4 + x => 3x - 3y + 4
	e := Add(Add(Sub(Mul(Const(2), NewVar(x)), Mul(Const(3), NewVar(y))), Const(4)), NewVar(x))
	lf, ok := Linearize(e)
	if !ok {
		t.Fatal("linearize failed")
	}
	if lf.Constant != 4 {
		t.Fatalf("constant %v", lf.Constant)
	}
	if lf.Coeffs[x.Key] != 3 || lf.Coeffs[y.Key] != -3 {
		t.Fatalf("coeffs %v", lf.Coeffs)
	}
}

func TestLinearizeDivByConst(t *testing.T) {
	x := testVar(1)
	lf, ok := Linearize(Div(NewVar(x), Const(4)))
	if !ok || lf.Coeffs[x.Key] != 0.25 {
		t.Fatalf("x/4: %v ok=%v", lf.Coeffs, ok)
	}
	if _, ok := Linearize(Div(Const(1), NewVar(x))); ok {
		t.Fatal("1/x should not linearize")
	}
}

func TestLinearizeRejectsQuadratic(t *testing.T) {
	x := NewVar(testVar(1))
	if _, ok := Linearize(Mul(x, x)); ok {
		t.Fatal("x*x should not linearize")
	}
}

func TestLinearizeCancellation(t *testing.T) {
	x := testVar(1)
	// x - x => coefficient cancels to zero and is dropped.
	lf, ok := Linearize(Sub(NewVar(x), NewVar(x)))
	if !ok {
		t.Fatal("linearize failed")
	}
	if len(lf.Coeffs) != 0 {
		t.Fatalf("expected empty coeffs, got %v", lf.Coeffs)
	}
}

func TestLinearizeAgreesWithEval(t *testing.T) {
	// Property: for random linear combos, the linear form evaluates to the
	// same value as the tree.
	x, y := testVar(1), testVar(2)
	f := func(a, b, c, vx, vy float64) bool {
		if anyBad(a, b, c, vx, vy) {
			return true
		}
		e := Add(Add(Mul(Const(a), NewVar(x)), Mul(Const(b), NewVar(y))), Const(c))
		lf, ok := Linearize(e)
		if !ok {
			return false
		}
		asn := Assignment{x.Key: vx, y.Key: vy}
		want := e.Eval(asn)
		got := lf.Constant + lf.Coeffs[x.Key]*vx + lf.Coeffs[y.Key]*vy
		return math.Abs(want-got) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			return true
		}
	}
	return false
}

func TestSampleVariableConsistency(t *testing.T) {
	v := testVar(9)
	a := SampleVariable(v, 1, 5)
	b := SampleVariable(v, 1, 5)
	if a != b {
		t.Fatal("same (seed, sample) gave different values")
	}
	c := SampleVariable(v, 1, 6)
	if a == c {
		t.Fatal("different sample indices gave identical values")
	}
	d := SampleVariable(v, 2, 5)
	if a == d {
		t.Fatal("different world seeds gave identical values")
	}
}

func TestSampleVariableJoint(t *testing.T) {
	l, _ := dist.CholeskyFromCovariance([][]float64{{1, 0.9}, {0.9, 1}})
	params := dist.MVNormalParams([]float64{0, 0}, l)
	inst := dist.MustInstance(dist.MVNormal{}, params...)
	v0 := &Variable{Key: VarKey{ID: 7, Subscript: 0}, Dist: inst}
	v1 := &Variable{Key: VarKey{ID: 7, Subscript: 1}, Dist: inst}
	// Strong positive correlation must survive component-wise sampling.
	var sxy, sx, sy float64
	const n = 20000
	for i := uint64(0); i < n; i++ {
		a := SampleVariable(v0, 3, i)
		b := SampleVariable(v1, 3, i)
		sx += a
		sy += b
		sxy += a * b
	}
	cov := sxy/n - (sx/n)*(sy/n)
	if cov < 0.8 {
		t.Fatalf("joint correlation lost: cov = %v", cov)
	}
}

func TestVarKeyString(t *testing.T) {
	if got := (VarKey{ID: 3}).String(); got != "X3" {
		t.Fatalf("got %q", got)
	}
	if got := (VarKey{ID: 3, Subscript: 2}).String(); got != "X3[2]" {
		t.Fatalf("got %q", got)
	}
}

func TestExprString(t *testing.T) {
	x := &Variable{Key: VarKey{ID: 1}, Dist: dist.MustInstance(dist.Normal{}, 0, 1), Name: "Price"}
	e := Add(Mul(NewVar(x), Const(3)), Const(1))
	if got := e.String(); got != "((Price * 3) + 1)" {
		t.Fatalf("String() = %q", got)
	}
}
