package pip_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"pip"
)

// buildConcurrencyDB seeds a handle with a probabilistic table large enough
// that aggregate queries overlap in time.
func buildConcurrencyDB(t *testing.T, workers int) *pip.DB {
	t.Helper()
	db := pip.Open(pip.Options{Seed: 77, FixedSamples: 200, Workers: workers})
	db.MustExec(`CREATE TABLE orders (cust, price)`)
	for i := 0; i < 30; i++ {
		db.MustExec(fmt.Sprintf(
			`INSERT INTO orders VALUES (%d, CREATE_VARIABLE('Normal', %d, 10))`, i, 80+i))
	}
	return db
}

// TestConcurrentQueries hammers one DB handle from many goroutines — the
// race-detector guarantee behind serving parallel sessions: queries share
// the catalog and an immutable sampler, so no locks are needed on the read
// path and every goroutine must see the same answer.
func TestConcurrentQueries(t *testing.T) {
	db := buildConcurrencyDB(t, 8)
	want := db.MustQuery(`SELECT expected_sum(price) FROM orders WHERE price > 85`)
	wantVal, ok := want.Tuples[0].Values[0].AsFloat()
	if !ok {
		t.Fatal("non-numeric aggregate result")
	}

	const goroutines = 8
	const iterations = 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				res, err := db.Query(`SELECT expected_sum(price) FROM orders WHERE price > 85`)
				if err != nil {
					errs <- err
					return
				}
				got, _ := res.Tuples[0].Values[0].AsFloat()
				if math.Float64bits(got) != math.Float64bits(wantVal) {
					errs <- fmt.Errorf("concurrent query returned %v, want %v", got, wantVal)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesWithSet mixes SET statements into concurrent query
// traffic: configuration swaps must be atomic (queries finish under the
// sampler they started with, never a torn config).
func TestConcurrentQueriesWithSet(t *testing.T) {
	db := buildConcurrencyDB(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := db.Query(`SELECT conf() FROM orders WHERE price > 95`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, stmt := range []string{`SET workers = 2`, `SET workers = 8`, `SET samples = 100`, `SET workers = 1`} {
			if err := db.Exec(stmt); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWorkersOptionBitIdentity checks the contract end to end through the
// public API: two handles differing only in Workers return bit-identical
// query results.
func TestWorkersOptionBitIdentity(t *testing.T) {
	q := `SELECT expected_sum(price), expected_count(*) FROM orders WHERE price > 85`
	seq := buildConcurrencyDB(t, 1).MustQuery(q)
	par := buildConcurrencyDB(t, 8).MustQuery(q)
	for c := range seq.Tuples[0].Values {
		a, _ := seq.Tuples[0].Values[c].AsFloat()
		b, _ := par.Tuples[0].Values[c].AsFloat()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("column %d: workers=8 gave %v, workers=1 gave %v", c, b, a)
		}
	}
}
