// Package pip is a probabilistic database engine with native support for
// continuous (and discrete) probability distributions, reproducing the PIP
// system of Kennedy & Koch, "PIP: A Database System for Great and Small
// Expectations" (ICDE 2010).
//
// PIP represents uncertain values symbolically: random variables are opaque
// terms manipulated by ordinary relational operators, query results are
// conditional tables (c-tables) whose rows carry boolean conditions over
// those variables, and all sampling / numerical integration is deferred to
// dedicated expectation operators that run once the full expression to be
// measured is known. Deferral enables goal-directed strategies — exact CDF
// integration, inverse-CDF constrained sampling, independence partitioning,
// Metropolis fallback — that a sample-first engine cannot apply, because it
// commits to samples before seeing the query.
//
// # Quick start
//
//	db := pip.Open(pip.Options{Seed: 1})
//	db.MustExec(`CREATE TABLE orders (cust, price)`)
//	db.MustExec(`INSERT INTO orders VALUES ('Joe', CREATE_VARIABLE('Normal', 100, 10))`)
//	res := db.MustQuery(`SELECT expected_sum(price) FROM orders WHERE price > 95`)
//	fmt.Println(res)
//
// The same machinery is available programmatically: create variables with
// DB.NormalVar and friends, build c-tables with NewTable/Insert, compose
// relational operators from the ctable package via the re-exported helpers,
// and evaluate with DB.ExpectedSum, DB.Conf, DB.Histogram.
//
// # Architecture
//
// internal/prng, internal/dist  — seeded PRNG and distribution classes
// internal/expr, internal/cond  — the equation datatype and c-table conditions
// internal/ctable               — c-tables and relational algebra (paper Fig. 1)
// internal/sampler              — Algorithm 4.3, aggregate operators, and the
//	deterministic parallel world-evaluation engine (bit-identical results
//	at any Options.Workers; see docs/ARCHITECTURE.md)
// internal/core                 — catalog, variables, views
// internal/sql                  — the SQL subset and its two-stage query
//	planner: logical plan IR + rewrite rules (constant folding, predicate
//	pushdown, hash-join extraction, projection pruning) lowered onto
//	streaming Cursor operators; EXPLAIN [ANALYZE] exposes the plan
// internal/wal                  — durability: write-ahead statement log +
//	catalog snapshots with crash recovery; pipd -data-dir wires it into the
//	core statement-commit hook (acknowledged ⇒ durable; replaying the same
//	seed and log rebuilds the catalog bit for bit)
// internal/obs                  — telemetry primitives (counters, histograms,
//	phase timers) behind SHOW STATS and /metrics; see docs/OBSERVABILITY.md
// internal/samplefirst          — the MCDB-style baseline used in benchmarks
// internal/iceberg, internal/tpch — the paper's evaluation datasets (§VI)
// internal/bench                — experiment harnesses over both engines
package pip

import (
	"context"
	"fmt"

	"pip/internal/cond"
	"pip/internal/core"
	"pip/internal/ctable"
	"pip/internal/dist"
	"pip/internal/expr"
	"pip/internal/sampler"
	"pip/internal/sql"
)

// Options configures a database instance.
type Options struct {
	// Seed parameterizes all pseudorandom draws; equal seeds give
	// bit-identical results. The zero seed is replaced by a fixed default.
	Seed uint64
	// Epsilon and Delta set the (epsilon, delta) guarantee of adaptive
	// sampling: with confidence 1-Epsilon, relative error below Delta.
	// Zero values take the defaults (0.05, 0.05).
	Epsilon float64
	Delta   float64
	// FixedSamples, when positive, disables adaptive stopping and uses
	// exactly this many samples per expectation.
	FixedSamples int
	// MaxSamples caps adaptive sampling (default 10000).
	MaxSamples int
	// Workers sets the goroutine pool used to evaluate sample worlds in
	// parallel. Zero uses one worker per CPU (runtime.GOMAXPROCS); one
	// forces sequential evaluation. Results are bit-identical for every
	// value: equal seed + any worker count => identical output. Also
	// settable per session with `SET workers = N`.
	Workers int
}

// DB is a PIP database handle.
type DB struct {
	core *core.DB
}

// Open creates a database.
func Open(opts Options) *DB {
	cfg := sampler.DefaultConfig()
	if opts.Seed != 0 {
		cfg.WorldSeed = opts.Seed
	}
	if opts.Epsilon > 0 {
		cfg.Epsilon = opts.Epsilon
	}
	if opts.Delta > 0 {
		cfg.Delta = opts.Delta
	}
	if opts.FixedSamples > 0 {
		cfg.FixedSamples = opts.FixedSamples
	}
	if opts.MaxSamples > 0 {
		cfg.MaxSamples = opts.MaxSamples
	}
	if opts.Workers > 0 {
		cfg.Workers = opts.Workers
	}
	return &DB{core: core.NewDB(cfg)}
}

// Core exposes the underlying engine for advanced use (benchmark harnesses,
// custom operators).
func (db *DB) Core() *core.DB { return db.core }

// Session returns a handle sharing this database's tables and random-
// variable namespace but carrying its own sampling configuration: SET
// statements executed through the session change only that session, while
// DDL/DML remain shared and visible to every handle. Sessions are how the
// network server (internal/server, cmd/pipd) gives each remote client
// private settings over one shared database.
func (db *DB) Session() *DB { return &DB{core: db.core.Session()} }

// ---------------------------------------------------------------------------
// SQL interface
//
// The canonical query surface is driver-grade: Prepare once / bind many
// (? placeholders), QueryContext/ExecContext for cancellation, and Rows for
// streaming typed row consumption — see query.go and rows.go, and the
// pip/driver package for the database/sql embedding. The one-shot helpers
// below remain as thin wrappers.

// Exec runs a statement with optionally bound ? placeholder arguments,
// discarding any result table. Thin wrapper over ExecContext.
func (db *DB) Exec(query string, args ...any) error {
	return db.ExecContext(context.Background(), query, args...)
}

// MustExec is Exec panicking on error; for straight-line example code.
func (db *DB) MustExec(query string, args ...any) {
	if err := db.Exec(query, args...); err != nil {
		panic(err)
	}
}

// Query runs a statement with optionally bound ? placeholder arguments and
// returns the materialized result c-table (nil for DDL/DML). For streaming
// row consumption use QueryRows/QueryContext instead.
func (db *DB) Query(query string, args ...any) (*Table, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return sql.ExecContext(context.Background(), db.core, query, vals...)
}

// MustQuery is Query panicking on error.
func (db *DB) MustQuery(query string, args ...any) *Table {
	out, err := db.Query(query, args...)
	if err != nil {
		panic(err)
	}
	return out
}

// ---------------------------------------------------------------------------
// Programmatic interface

// Table is a probabilistic c-table (re-exported from internal/ctable).
type Table = ctable.Table

// Tuple is one c-table row.
type Tuple = ctable.Tuple

// Value is one c-table cell.
type Value = ctable.Value

// Variable is a random variable.
type Variable = expr.Variable

// Expr is a random-variable equation.
type Expr = expr.Expr

// Condition is a c-table row condition in DNF — a disjunction of
// conjunctive clauses over random-variable atoms (exposed by Rows.Cond).
type Condition = cond.Condition

// PlanNode is one operator of a compiled query plan, as returned by
// DB.Explain; its String method renders the indented operator tree.
type PlanNode = sql.PlanNode

// Result reports an expectation/confidence computation.
type Result = sampler.Result

// Float wraps a constant number as a cell value.
func Float(f float64) Value { return ctable.Float(f) }

// Int wraps a constant integer.
func Int(i int64) Value { return ctable.Int(i) }

// Str wraps a constant string.
func Str(s string) Value { return ctable.String_(s) }

// VarValue wraps a random variable as a symbolic cell value.
func VarValue(v *Variable) Value { return ctable.Symbolic(expr.NewVar(v)) }

// ExprValue wraps an equation as a symbolic cell value.
func ExprValue(e Expr) Value { return ctable.Symbolic(e) }

// V wraps a variable as an equation term.
func V(v *Variable) Expr { return expr.NewVar(v) }

// C wraps a constant as an equation term.
func C(f float64) Expr { return expr.Const(f) }

// Add, Sub, Mul, Div build equations with constant folding.
func Add(l, r Expr) Expr { return expr.Add(l, r) }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return expr.Sub(l, r) }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return expr.Mul(l, r) }

// Div returns l / r.
func Div(l, r Expr) Expr { return expr.Div(l, r) }

// CreateVariable allocates a random variable from a registered distribution
// class ("Normal", "Uniform", "Exponential", "Poisson", "Gamma", "Beta",
// "Lognormal", "Bernoulli", "DiscreteUniform", ...).
func (db *DB) CreateVariable(distName string, params ...float64) (*Variable, error) {
	return db.core.CreateVariable(distName, params...)
}

// NormalVar allocates X ~ Normal(mu, sigma).
func (db *DB) NormalVar(mu, sigma float64) *Variable {
	return db.mustVar("Normal", mu, sigma)
}

// UniformVar allocates X ~ Uniform(a, b).
func (db *DB) UniformVar(a, b float64) *Variable {
	return db.mustVar("Uniform", a, b)
}

// ExponentialVar allocates X ~ Exponential(rate).
func (db *DB) ExponentialVar(rate float64) *Variable {
	return db.mustVar("Exponential", rate)
}

// PoissonVar allocates X ~ Poisson(lambda).
func (db *DB) PoissonVar(lambda float64) *Variable {
	return db.mustVar("Poisson", lambda)
}

func (db *DB) mustVar(name string, params ...float64) *Variable {
	v, err := db.core.CreateVariable(name, params...)
	if err != nil {
		panic(fmt.Sprintf("pip: %v", err))
	}
	return v
}

// NewTable creates and registers an empty table.
func (db *DB) NewTable(name string, cols ...string) *Table {
	tb := ctable.New(name, cols...)
	db.core.Register(tb)
	return tb
}

// Insert appends a row of values to a table.
func (db *DB) Insert(tb *Table, vals ...Value) error {
	return tb.Append(ctable.NewTuple(vals...))
}

// Materialize stores a query result as a named view; the symbolic
// representation is lossless so later expectations are unbiased.
func (db *DB) Materialize(name string, tb *Table) *Table {
	return db.core.Materialize(name, tb)
}

// Table fetches a registered table by name.
func (db *DB) Table(name string) (*Table, error) { return db.core.Table(name) }

// ---------------------------------------------------------------------------
// Expectation operators

// Expectation computes E[e | where] and P[where] for an equation under a
// conjunction of atoms built with GT/GE/LT/LE/EQ helpers.
func (db *DB) Expectation(e Expr, where ...cond.Atom) Result {
	return db.core.Sampler().Expectation(e, cond.Clause(where), true)
}

// Conf computes the probability that all given atoms hold.
func (db *DB) Conf(where ...cond.Atom) Result {
	return db.core.Sampler().Conf(cond.Clause(where))
}

// Variance computes Var[e | where] along with the conditional mean and
// standard deviation.
func (db *DB) Variance(e Expr, where ...cond.Atom) sampler.VarianceResult {
	return db.core.Sampler().Variance(e, cond.Clause(where))
}

// Moment computes the k-th raw conditional moment E[e^k | where].
func (db *DB) Moment(e Expr, k int, where ...cond.Atom) sampler.MomentResult {
	return db.core.Sampler().Moment(e, cond.Clause(where), k)
}

// ExpectedSum computes E[sum(col)] over a c-table.
func (db *DB) ExpectedSum(tb *Table, col int) (float64, error) {
	r, err := db.core.Sampler().ExpectedSum(tb, col)
	return r.Value, err
}

// ExpectedMax computes E[max(col)] with the early-terminating algorithm.
func (db *DB) ExpectedMax(tb *Table, col int, precision float64) (float64, error) {
	r, err := db.core.Sampler().ExpectedMax(tb, col, precision)
	return r.Value, err
}

// Histogram draws n per-world samples of sum(col) for visualization
// (expected_sum_hist).
func (db *DB) Histogram(tb *Table, col int, n int) ([]float64, error) {
	return db.core.Histogram(tb, col, core.AggSum, n)
}

// Atom comparison helpers for the programmatic interface.

// GT builds the atom l > r.
func GT(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.GT, r) }

// GE builds the atom l >= r.
func GE(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.GE, r) }

// LT builds the atom l < r.
func LT(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.LT, r) }

// LE builds the atom l <= r.
func LE(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.LE, r) }

// EQ builds the atom l = r.
func EQ(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.EQ, r) }

// NEQ builds the atom l <> r.
func NEQ(l, r Expr) cond.Atom { return cond.NewAtom(l, cond.NEQ, r) }

// Distributions lists the registered distribution class names.
func Distributions() []string { return dist.Names() }
